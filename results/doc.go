// Package results defines the machine-readable result records of the
// ATLAHS toolchain: typed sweeps of experiment rows with lossless JSON and
// CSV encodings, so figures and tables are regenerated as data artifacts
// instead of parsed out of printed text.
//
// A Sweep is one experiment's output: identifying metadata (Name, Title,
// Mode), a typed column schema, the data rows (one Record per
// configuration point), experiment-level Params, Derived aggregates, and
// free-text Notes. Records hold canonical Go values only — string, int64
// and float64 — with the column Kind distinguishing plain integers from
// simulated-time durations (always integer picoseconds, the base unit of
// internal/simtime).
//
// # JSON schema (atlahs.results/v1)
//
// EncodeJSON writes one Sweep as a single JSON object:
//
//	{
//	  "schema":  "atlahs.results/v1",
//	  "name":    "fig8",
//	  "title":   "Fig 8 — AI validation: ...",
//	  "mode":    "quick",
//	  "params":  {"key": "value"},               // optional
//	  "columns": [{"name": "measured", "kind": "duration", "unit": "ps"}],
//	  "rows":    [{"measured": 254663000000}],   // one object per Record
//	  "derived": {"max_abs_err_pct": 3.2},       // optional
//	  "notes":   ["paper: ..."]                  // optional
//	}
//
// Row objects are keyed by column name and carry exactly the declared
// columns: "string" cells are JSON strings, "int" and "duration" cells are
// integral JSON numbers (int64 range), "float" cells are finite JSON
// numbers. EncodeJSONList writes a JSON array of such objects.
//
// # CSV schema
//
// EncodeCSV writes the same sweep as a comment preamble plus an RFC-4180
// body. Preamble lines start with "# " and carry the non-tabular fields:
//
//	# schema atlahs.results/v1
//	# name fig8
//	# title Fig 8 — AI validation: ...
//	# mode quick
//	# param key value
//	# derived max_abs_err_pct 3.2
//	# note paper: ...
//
// The first CSV record is the header; each cell is "name:kind" or
// "name:kind:unit" so the column schema survives the round trip. Data
// cells format as raw strings, decimal int64, or shortest-round-trip
// floats (strconv 'g', precision -1).
//
// # Diff schema (atlahs.diff/v1)
//
// A SweepDiff is the field-by-field comparison of two sweeps, the
// document behind `atlahs-analyze diff` and the service's
// GET /v1/analyze/diff. EncodeDiffJSON writes one SweepDiff as a single
// JSON object:
//
//	{
//	  "schema":  "atlahs.diff/v1",
//	  "a": "fig8", "b": "fig8",            // the compared sweeps' names
//	  "keys":    [{"name": "configuration", "kind": "string"}],
//	  "rows_a": 4, "rows_b": 4, "matched": 4, "changed": 1,
//	  "columns_only_a": [...], "columns_only_b": [...],   // optional
//	  "rows_only_a": [{"row": 3, "key": {...}}],          // optional
//	  "rows": [{"row": 0, "key": {"configuration": "llama7b"},
//	            "fields": [{"column": "measured", "kind": "duration",
//	                        "unit": "ps", "a": 100, "b": 120,
//	                        "abs": 20, "rel": 0.2}]}],
//	  "params":  [{"key": "mode", "a": "quick", "b": "full"}],
//	  "derived": [{"key": "runtime_ps", "a": 100, "b": 120,
//	               "abs": 20, "rel": 0.2}],
//	  "derived_only_a": [...], "derived_only_b": [...]    // optional
//	}
//
// Every delta is B relative to A: "abs" is B-A and "rel" is (B-A)/|A|,
// omitted when A is zero (the relative move is undefined) and for string
// cells. The document is sparse — only changed rows, params and derived
// values appear — so two identical sweeps diff to "changed": 0 with no
// rows. "keys" carries the columns rows were matched on; when empty, rows
// were matched by position and row diffs carry no "key" object. Like the
// results schema, atlahs.diff/v1 is append-only.
//
// A Series ({"metric", "unit", "points": [{"label", "unix", "value"}]})
// is one metric's trajectory across an ordered sequence of runs; it has
// no standalone schema string — it travels inside atlahs.history/v1
// responses (see internal/analyze and GET /v1/history).
//
// # Stability guarantee
//
// The "atlahs.results/v1" schema is append-only: released field names,
// column kinds and cell encodings keep their meaning, and decoders
// tolerate new optional top-level fields. Renaming or retyping a field, or
// changing a unit, requires a new schema version string; consumers should
// reject schemas they do not know. Column sets of individual experiments
// may grow new columns between releases — CSV/JSON consumers should select
// columns by name, not by position.
//
// Encode→decode is lossless for both encodings: DecodeJSON(EncodeJSON(s))
// and DecodeCSV(EncodeCSV(s)) reproduce the Sweep exactly (the round-trip
// suite pins this).
package results
