package results

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// These tests pin the codec edge cases the diff engine leans on: every
// decoded sweep holds finite numeric cells, rows that exactly match their
// column schema, and empty sweeps survive both encodings — so
// analyze.Diff never has to re-check what the codecs guarantee.

// nonFinite builds a sweep carrying one non-finite float cell.
func nonFinite(v float64) *Sweep {
	s := NewSweep("edge", "edge case", "test")
	s.AddColumn("v", Float, "")
	s.Rows = append(s.Rows, Record{v}) // bypass AddRow: inject the raw cell
	return s
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		s := nonFinite(v)
		if err := EncodeJSON(&bytes.Buffer{}, s); err == nil {
			t.Errorf("EncodeJSON must reject %v cells", v)
		}
		if err := EncodeCSV(&bytes.Buffer{}, s); err == nil {
			t.Errorf("EncodeCSV must reject %v cells", v)
		}
	}
	s := NewSweep("edge", "edge case", "test")
	s.AddColumn("v", Float, "")
	s.MustAddRow(1.0)
	s.SetDerived("agg", math.NaN())
	if err := EncodeJSON(&bytes.Buffer{}, s); err == nil {
		t.Error("EncodeJSON must reject NaN derived values")
	}
}

func TestDecodeRejectsNonFinite(t *testing.T) {
	// CSV cells parse through strconv.ParseFloat, which accepts NaN and
	// infinity spellings — validation must still reject them.
	for _, cell := range []string{"NaN", "+Inf", "-Inf", "Infinity"} {
		csv := "# schema " + Schema + "\n# name edge\n" + "v:float\n" + cell + "\n"
		if _, err := DecodeCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("DecodeCSV must reject %q float cells", cell)
		}
	}
	// JSON has no NaN/Inf literal; the closest attack is a number too
	// large for float64, which must fail the cell conversion rather than
	// silently becoming +Inf.
	huge := `{"schema":"` + Schema + `","name":"edge","columns":[{"name":"v","kind":"float"}],"rows":[{"v":1e999}]}`
	if _, err := DecodeJSON(strings.NewReader(huge)); err == nil {
		t.Error("DecodeJSON must reject out-of-range float cells")
	}
	hugeDuration := `{"schema":"` + Schema + `","name":"edge","columns":[{"name":"v","kind":"duration"}],"rows":[{"v":9223372036854775808}]}`
	if _, err := DecodeJSON(strings.NewReader(hugeDuration)); err == nil {
		t.Error("DecodeJSON must reject duration cells past int64 range")
	}
}

func TestEmptySweepRoundTrips(t *testing.T) {
	// A sweep with columns but no rows is legal — a diff of two such
	// sweeps is empty, not an error.
	s := NewSweep("empty", "no rows", "test")
	s.AddColumn("v", Int, "")
	var js, cs bytes.Buffer
	if err := EncodeJSON(&js, s); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	if err := EncodeCSV(&cs, s); err != nil {
		t.Fatalf("EncodeCSV: %v", err)
	}
	fromJSON, err := DecodeJSON(&js)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	fromCSV, err := DecodeCSV(&cs)
	if err != nil {
		t.Fatalf("DecodeCSV: %v", err)
	}
	for _, got := range []*Sweep{fromJSON, fromCSV} {
		if !reflect.DeepEqual(got, s) {
			t.Errorf("empty sweep round trip diverged:\ngot  %#v\nwant %#v", got, s)
		}
	}
	// No columns at all is not: the schema requires at least one.
	bare := NewSweep("bare", "no columns", "test")
	if err := EncodeJSON(&bytes.Buffer{}, bare); err == nil {
		t.Error("EncodeJSON must reject sweeps with no columns")
	}
}

func TestDecodeRejectsMismatchedColumns(t *testing.T) {
	header := `{"schema":"` + Schema + `","name":"edge","columns":[{"name":"a","kind":"int"},{"name":"b","kind":"int"}],"rows":[`
	cases := map[string]string{
		"row misses a column":     header + `{"a":1}]}`,
		"row adds a column":       header + `{"a":1,"b":2,"c":3}]}`,
		"row renames a column":    header + `{"a":1,"c":2}]}`,
		"cell of the wrong kind":  header + `{"a":1,"b":"two"}]}`,
		"duplicate column schema": `{"schema":"` + Schema + `","name":"edge","columns":[{"name":"a","kind":"int"},{"name":"a","kind":"int"}],"rows":[{"a":1}]}`,
	}
	for name, doc := range cases {
		if _, err := DecodeJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("DecodeJSON must reject: %s", name)
		}
	}
	csvShort := "# schema " + Schema + "\n# name edge\n" + "a:int,b:int\n1\n"
	if _, err := DecodeCSV(strings.NewReader(csvShort)); err == nil {
		t.Error("DecodeCSV must reject rows with missing cells")
	}
	csvLong := "# schema " + Schema + "\n# name edge\n" + "a:int,b:int\n1,2,3\n"
	if _, err := DecodeCSV(strings.NewReader(csvLong)); err == nil {
		t.Error("DecodeCSV must reject rows with extra cells")
	}
}
