package results

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

// testDiff builds a representative diff exercising every wire feature:
// keyed rows, unmatched rows on both sides, string and numeric deltas,
// one-sided columns and derived values, and changed params.
func testDiff() *SweepDiff {
	return &SweepDiff{
		A:            "fig8",
		B:            "fig8",
		Keys:         []Column{{Name: "configuration", Kind: String}, {Name: "ranks", Kind: Int}},
		RowsA:        4,
		RowsB:        4,
		Matched:      3,
		Changed:      2,
		ColumnsOnlyA: []string{"old_col"},
		ColumnsOnlyB: []string{"new_col"},
		RowsOnlyA:    []RowRef{{Row: 3, Key: map[string]any{"configuration": "gone", "ranks": int64(8)}}},
		RowsOnlyB:    []RowRef{{Row: 3, Key: map[string]any{"configuration": "fresh", "ranks": int64(16)}}},
		Rows: []RowDiff{
			{
				Row: 0,
				Key: map[string]any{"configuration": "llama7b", "ranks": int64(8)},
				Fields: []FieldDelta{
					{Column: "measured", Kind: Duration, Unit: "ps", A: int64(100), B: int64(120), Abs: fp(20), Rel: fp(0.2)},
					{Column: "err_pct", Kind: Float, A: 0.0, B: 1.5, Abs: fp(1.5)},
					{Column: "engine", Kind: String, A: "serial", B: "parallel"},
				},
			},
			{
				Row: 2,
				Key: map[string]any{"configuration": "gpt3", "ranks": int64(8)},
				Fields: []FieldDelta{
					{Column: "measured", Kind: Duration, Unit: "ps", A: int64(400), B: int64(300), Abs: fp(-100), Rel: fp(-0.25)},
				},
			},
		},
		Params:       []ParamDelta{{Key: "mode", A: "quick", B: "full"}},
		Derived:      []ScalarDelta{{Key: "runtime_ps", A: 100, B: 120, Abs: 20, Rel: fp(0.2)}},
		DerivedOnlyA: []string{"legacy_metric"},
		DerivedOnlyB: []string{"fresh_metric"},
	}
}

func TestDiffJSONRoundTrip(t *testing.T) {
	d := testDiff()
	var buf bytes.Buffer
	if err := EncodeDiffJSON(&buf, d); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeDiffJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip diverged:\ngot  %#v\nwant %#v", got, d)
	}
	// The encoding is deterministic: encoding again yields the same bytes.
	var again bytes.Buffer
	if err := EncodeDiffJSON(&again, got); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Errorf("re-encoded bytes differ from the original encoding")
	}
}

func TestDiffEmptyRoundTrip(t *testing.T) {
	// Identical sweeps diff to a document with no rows; it still round
	// trips and validates.
	d := &SweepDiff{A: "a1", B: "b1", RowsA: 2, RowsB: 2, Matched: 2}
	var buf bytes.Buffer
	if err := EncodeDiffJSON(&buf, d); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeDiffJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip diverged:\ngot  %#v\nwant %#v", got, d)
	}
}

func TestDiffSchemaRejected(t *testing.T) {
	if _, err := DecodeDiffJSON(strings.NewReader(`{"schema":"atlahs.diff/v2","a":"x","b":"y"}`)); err == nil {
		t.Error("unknown diff schema must be rejected")
	}
}

func TestDiffValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SweepDiff)
	}{
		{"bad sweep name", func(d *SweepDiff) { d.A = "Not Snake" }},
		{"matched exceeds rows", func(d *SweepDiff) { d.Matched = 99 }},
		{"changed disagrees with rows", func(d *SweepDiff) { d.Changed = 7 }},
		{"unmatched lists disagree", func(d *SweepDiff) { d.RowsOnlyA = nil }},
		{"empty field list", func(d *SweepDiff) { d.Rows[1].Fields = nil }},
		{"equal cells recorded", func(d *SweepDiff) {
			d.Rows[0].Fields[0].B = int64(100)
			d.Rows[0].Fields[0].Abs = fp(0)
		}},
		{"abs disagrees with cells", func(d *SweepDiff) { d.Rows[0].Fields[0].Abs = fp(1) }},
		{"rel missing on non-zero baseline", func(d *SweepDiff) { d.Rows[0].Fields[0].Rel = nil }},
		{"rel present on zero baseline", func(d *SweepDiff) { d.Rows[0].Fields[1].Rel = fp(1) }},
		{"string delta with numeric deltas", func(d *SweepDiff) { d.Rows[0].Fields[2].Abs = fp(1) }},
		{"key cell of wrong type", func(d *SweepDiff) { d.Rows[0].Key["ranks"] = "eight" }},
		{"key cell missing", func(d *SweepDiff) { delete(d.Rows[0].Key, "ranks") }},
		{"derived rel on zero baseline", func(d *SweepDiff) {
			d.Derived[0].A = 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := testDiff()
			tc.mutate(d)
			if err := d.Validate(); err == nil {
				t.Error("mutated diff must fail validation")
			}
		})
	}
	if err := testDiff().Validate(); err != nil {
		t.Errorf("unmutated diff must validate: %v", err)
	}
}

func TestDiffPositionalKeysRejectKeyCells(t *testing.T) {
	d := &SweepDiff{
		A: "a1", B: "b1", RowsA: 1, RowsB: 1, Matched: 1, Changed: 1,
		Rows: []RowDiff{{
			Row: 0,
			Key: map[string]any{"stray": "cell"},
			Fields: []FieldDelta{
				{Column: "v", Kind: Int, A: int64(1), B: int64(2), Abs: fp(1), Rel: fp(1)},
			},
		}},
	}
	if err := d.Validate(); err == nil {
		t.Error("key cells under positional matching must fail validation")
	}
	d.Rows[0].Key = nil
	if err := d.Validate(); err != nil {
		t.Errorf("positional diff must validate: %v", err)
	}
}
