package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// ModelSchema identifies the wire layout EncodeModelJSON writes and
// DecodeModelJSON reads. Like atlahs.results/v1 it is append-only:
// released fields keep their names and types; new optional fields may be
// added.
const ModelSchema = "atlahs.model/v1"

// ModelOffsetBins is the fixed resolution of a TrafficClass's destination
// offset histogram: offsets (dst-src mod ranks) are folded into this many
// equal-width bins so the spatial shape of a pattern survives rescaling to
// a different rank count.
const ModelOffsetBins = 32

// WorkloadModel is a statistical model of a GOAL workload, mined from a
// resolved schedule (internal/workload/synth.Mine) and sampled back into a
// schedule at an arbitrary rank count (synth.Generate). It captures the
// per-rank communication volume, the message-size mix split into traffic
// classes with spatial offset histograms, the compute budget, and the
// dependency-depth profile that sets the generated phase structure.
type WorkloadModel struct {
	// Comment is free-form provenance (e.g. the mined trace's name).
	Comment string `json:"comment,omitempty"`
	// SourceRanks is the rank count of the mined schedule.
	SourceRanks int `json:"source_ranks"`
	// SourceOps is the total op count of the mined schedule.
	SourceOps int64 `json:"source_ops"`

	// DepthMean and DepthMax profile the per-rank critical path measured
	// in ops (longest requires/irequires chain).
	DepthMean float64 `json:"depth_mean"`
	DepthMax  int     `json:"depth_max"`
	// Phases is the superstep count generation unrolls the model into,
	// derived from the depth profile at mine time. Always >= 1.
	Phases int `json:"phases"`

	// Calc is the distribution of individual calc-op durations (ns).
	Calc Dist `json:"calc"`
	// CalcNsPerRank is the distribution of per-rank total compute (ns).
	CalcNsPerRank Dist `json:"calc_ns_per_rank"`
	// SendsPerRank is the distribution of per-rank send counts.
	SendsPerRank Dist `json:"sends_per_rank"`
	// Sizes is the global send-size distribution (bytes) across all
	// traffic classes.
	Sizes Dist `json:"sizes"`
	// Classes splits the sends into message-size classes, each with its
	// own size distribution and destination-offset histogram. Class counts
	// sum to Sizes.Count.
	Classes []TrafficClass `json:"classes,omitempty"`
	// CalcCommRatio is the compute/communication ratio: total calc
	// nanoseconds per total send byte (0 when the workload has no sends).
	CalcCommRatio float64 `json:"calc_comm_ratio"`
}

// TrafficClass is one message-size class of a model's sends: how many
// messages fall in the class, their size distribution, and where they go.
type TrafficClass struct {
	// Count is the number of sends in this class.
	Count int64 `json:"count"`
	// Sizes is the class's send-size distribution (bytes).
	Sizes Dist `json:"sizes"`
	// Offsets is the destination histogram over ModelOffsetBins bins of
	// the normalised rank offset (dst-src mod ranks) / ranks; entries sum
	// to Count.
	Offsets []int64 `json:"offsets"`
}

// Dist summarises one empirical distribution: moments plus a histogram.
// A zero Dist (Count 0) means "no samples".
type Dist struct {
	// Count is the number of samples.
	Count int64 `json:"count"`
	// Mean and Std are the sample mean and population standard deviation.
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	// Min and Max bound the samples.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Hist partitions the samples into ordered, non-overlapping buckets
	// whose counts sum to Count. Exact values get degenerate buckets
	// (Lo == Hi); heavy-tailed data gets power-of-two ranges.
	Hist []Bucket `json:"hist,omitempty"`
}

// Bucket is one histogram bucket: N samples observed in [Lo, Hi].
type Bucket struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
}

// jsonModel is the wire form of a WorkloadModel: the model's own json tags
// plus the schema discriminator.
type jsonModel struct {
	Schema string `json:"schema"`
	WorkloadModel
}

// Validate checks the model's structural invariants: positive source
// shape, at least one phase, finite moments, ordered histograms whose
// bucket counts sum to the distribution count, and traffic classes that
// partition the global send-size distribution with full offset histograms.
func (m *WorkloadModel) Validate() error {
	if m.SourceRanks <= 0 {
		return fmt.Errorf("results: model needs SourceRanks > 0, got %d", m.SourceRanks)
	}
	if m.SourceOps <= 0 {
		return fmt.Errorf("results: model needs SourceOps > 0, got %d", m.SourceOps)
	}
	if m.Phases < 1 {
		return fmt.Errorf("results: model needs Phases >= 1, got %d", m.Phases)
	}
	if !isFinite(m.DepthMean) || m.DepthMean < 0 {
		return fmt.Errorf("results: model DepthMean %v out of range", m.DepthMean)
	}
	if m.DepthMax < 0 {
		return fmt.Errorf("results: model DepthMax %d out of range", m.DepthMax)
	}
	if !isFinite(m.CalcCommRatio) || m.CalcCommRatio < 0 {
		return fmt.Errorf("results: model CalcCommRatio %v out of range", m.CalcCommRatio)
	}
	for _, d := range []struct {
		name string
		dist *Dist
	}{
		{"calc", &m.Calc}, {"calc_ns_per_rank", &m.CalcNsPerRank},
		{"sends_per_rank", &m.SendsPerRank}, {"sizes", &m.Sizes},
	} {
		if err := d.dist.validate(); err != nil {
			return fmt.Errorf("results: model dist %q: %w", d.name, err)
		}
	}
	var classed int64
	for i := range m.Classes {
		c := &m.Classes[i]
		if c.Count <= 0 {
			return fmt.Errorf("results: model class %d: needs Count > 0, got %d", i, c.Count)
		}
		if err := c.Sizes.validate(); err != nil {
			return fmt.Errorf("results: model class %d sizes: %w", i, err)
		}
		if c.Sizes.Count != c.Count {
			return fmt.Errorf("results: model class %d: size dist counts %d samples, class has %d", i, c.Sizes.Count, c.Count)
		}
		if len(c.Offsets) != ModelOffsetBins {
			return fmt.Errorf("results: model class %d: %d offset bins, want %d", i, len(c.Offsets), ModelOffsetBins)
		}
		var off int64
		for b, n := range c.Offsets {
			if n < 0 {
				return fmt.Errorf("results: model class %d: negative offset bin %d", i, b)
			}
			off += n
		}
		if off != c.Count {
			return fmt.Errorf("results: model class %d: offset bins sum to %d, class has %d", i, off, c.Count)
		}
		classed += c.Count
	}
	if classed != m.Sizes.Count {
		return fmt.Errorf("results: model classes cover %d sends, sizes dist has %d", classed, m.Sizes.Count)
	}
	return nil
}

// validate checks one distribution's internal consistency.
func (d *Dist) validate() error {
	if d.Count < 0 {
		return fmt.Errorf("negative sample count %d", d.Count)
	}
	if !isFinite(d.Mean) || !isFinite(d.Std) || d.Std < 0 {
		return fmt.Errorf("non-finite moments (mean %v, std %v)", d.Mean, d.Std)
	}
	if d.Count == 0 {
		if len(d.Hist) != 0 {
			return fmt.Errorf("empty dist carries %d histogram buckets", len(d.Hist))
		}
		return nil
	}
	if d.Min > d.Max {
		return fmt.Errorf("min %d > max %d", d.Min, d.Max)
	}
	if len(d.Hist) == 0 {
		return fmt.Errorf("%d samples but no histogram", d.Count)
	}
	var sum int64
	prev := int64(math.MinInt64)
	for i, b := range d.Hist {
		if b.N <= 0 {
			return fmt.Errorf("bucket %d: non-positive count %d", i, b.N)
		}
		if b.Lo > b.Hi {
			return fmt.Errorf("bucket %d: lo %d > hi %d", i, b.Lo, b.Hi)
		}
		if i > 0 && b.Lo <= prev {
			return fmt.Errorf("bucket %d: overlaps or disorders previous (lo %d <= prev hi %d)", i, b.Lo, prev)
		}
		if b.Lo < d.Min || b.Hi > d.Max {
			return fmt.Errorf("bucket %d: [%d,%d] outside [%d,%d]", i, b.Lo, b.Hi, d.Min, d.Max)
		}
		prev = b.Hi
		sum += b.N
	}
	if sum != d.Count {
		return fmt.Errorf("histogram sums to %d, dist has %d samples", sum, d.Count)
	}
	return nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// EncodeModelJSON validates m and writes it as one indented
// atlahs.model/v1 JSON object followed by a newline. The encoding is
// canonical: encoding the same model always yields identical bytes.
func EncodeModelJSON(w io.Writer, m *WorkloadModel) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(jsonModel{Schema: ModelSchema, WorkloadModel: *m}, "", "  ")
	if err != nil {
		return fmt.Errorf("results: encoding model: %w", err)
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// DecodeModelJSON reads one WorkloadModel written by EncodeModelJSON,
// rejecting unknown schema versions, unknown fields, trailing data and any
// model Validate rejects. The returned model compares equal (DeepEqual) to
// the encoded one.
func DecodeModelJSON(r io.Reader) (*WorkloadModel, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var jm jsonModel
	if err := dec.Decode(&jm); err != nil {
		return nil, fmt.Errorf("results: decoding model: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("results: trailing data after the model object")
	}
	if jm.Schema != ModelSchema {
		return nil, fmt.Errorf("results: unknown model schema %q (want %q)", jm.Schema, ModelSchema)
	}
	m := jm.WorkloadModel
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// DecodeModelBytes decodes one serialised atlahs.model/v1 document.
func DecodeModelBytes(b []byte) (*WorkloadModel, error) {
	return DecodeModelJSON(bytes.NewReader(b))
}
