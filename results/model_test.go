package results

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// testModel returns a small but fully-populated valid model.
func testModel() *WorkloadModel {
	return &WorkloadModel{
		Comment:     "test",
		SourceRanks: 8,
		SourceOps:   120,
		DepthMean:   3.5,
		DepthMax:    5,
		Phases:      3,
		Calc: Dist{Count: 24, Mean: 1000, Std: 0, Min: 1000, Max: 1000,
			Hist: []Bucket{{Lo: 1000, Hi: 1000, N: 24}}},
		CalcNsPerRank: Dist{Count: 8, Mean: 3000, Std: 0, Min: 3000, Max: 3000,
			Hist: []Bucket{{Lo: 3000, Hi: 3000, N: 8}}},
		SendsPerRank: Dist{Count: 8, Mean: 6, Std: 0, Min: 6, Max: 6,
			Hist: []Bucket{{Lo: 6, Hi: 6, N: 8}}},
		Sizes: Dist{Count: 48, Mean: 4096, Std: 0, Min: 4096, Max: 4096,
			Hist: []Bucket{{Lo: 4096, Hi: 4096, N: 48}}},
		Classes: []TrafficClass{{
			Count: 48,
			Sizes: Dist{Count: 48, Mean: 4096, Std: 0, Min: 4096, Max: 4096,
				Hist: []Bucket{{Lo: 4096, Hi: 4096, N: 48}}},
			Offsets: func() []int64 {
				o := make([]int64, ModelOffsetBins)
				o[4] = 48
				return o
			}(),
		}},
		CalcCommRatio: 0.12,
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := testModel()
	var buf bytes.Buffer
	if err := EncodeModelJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "atlahs.model/v1"`) {
		t.Fatalf("encoding lacks the schema field:\n%s", buf.String())
	}
	got, err := DecodeModelJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip changed the model:\n%+v\nvs\n%+v", m, got)
	}
	var again bytes.Buffer
	if err := EncodeModelJSON(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("encoding is not canonical")
	}
}

func TestModelValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*WorkloadModel)
		want   string
	}{
		{"no ranks", func(m *WorkloadModel) { m.SourceRanks = 0 }, "SourceRanks"},
		{"no ops", func(m *WorkloadModel) { m.SourceOps = 0 }, "SourceOps"},
		{"no phases", func(m *WorkloadModel) { m.Phases = 0 }, "Phases"},
		{"negative ratio", func(m *WorkloadModel) { m.CalcCommRatio = -1 }, "CalcCommRatio"},
		{"hist sum", func(m *WorkloadModel) { m.Sizes.Hist[0].N = 47 }, "sums to"},
		{"bucket bounds", func(m *WorkloadModel) { m.Sizes.Hist[0].Lo = 5000 }, "lo"},
		{"empty dist with hist", func(m *WorkloadModel) {
			m.Calc = Dist{Hist: []Bucket{{Lo: 1, Hi: 1, N: 1}}}
		}, "empty dist"},
		{"class count", func(m *WorkloadModel) { m.Classes[0].Count = 40 }, "class"},
		{"offset bins", func(m *WorkloadModel) { m.Classes[0].Offsets = m.Classes[0].Offsets[:8] }, "offset bins"},
		{"offset sum", func(m *WorkloadModel) { m.Classes[0].Offsets[4] = 10 }, "offset bins sum"},
		{"uncovered sends", func(m *WorkloadModel) { m.Classes = nil }, "classes cover"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testModel()
			tc.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid model")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			var buf bytes.Buffer
			if encErr := EncodeModelJSON(&buf, m); encErr == nil {
				t.Fatal("EncodeModelJSON accepted an invalid model")
			}
		})
	}
}

func TestDecodeModelRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"bad schema", `{"schema":"atlahs.model/v2","source_ranks":1}`, "unknown model schema"},
		{"unknown field", `{"schema":"atlahs.model/v1","bogus":1}`, "bogus"},
		{"trailing data", "", "trailing data"},
		{"not json", `nope`, "decoding model"},
	}
	var buf bytes.Buffer
	if err := EncodeModelJSON(&buf, testModel()); err != nil {
		t.Fatal(err)
	}
	cases[2].in = buf.String() + "{}"
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeModelBytes([]byte(tc.in))
			if err == nil {
				t.Fatal("DecodeModelBytes accepted invalid input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
