package results

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Store is a directory of atlahs.results/v1 JSON artifacts addressed by
// sweep name: every sweep lives at <dir>/<name>.json, the invariant the
// CI validator (internal/ci/validateresults) checks. The simulation
// service persists one artifact per run id through a Store, and
// consumers (dashboards, regression differs) look runs up by the same
// name.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) an artifact directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("results: store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: creating artifact store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Path returns where the named sweep's artifact lives, without checking
// that it exists.
func (st *Store) Path(name string) string {
	return filepath.Join(st.dir, name+".json")
}

// checkName rejects names that are not valid sweep names — which also
// keeps externally-supplied lookups (an HTTP run id, say) from escaping
// the store directory.
func (st *Store) checkName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("results: store name %q is not a snake_case identifier", name)
	}
	return nil
}

// Save validates the sweep and writes its artifact atomically (temp file
// plus rename), so a reader never observes a half-written artifact.
func (st *Store) Save(s *Sweep) error {
	if err := st.checkName(s.Name); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, "."+s.Name+".tmp-*")
	if err != nil {
		return fmt.Errorf("results: saving sweep %q: %w", s.Name, err)
	}
	defer os.Remove(tmp.Name())
	if err := EncodeJSON(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("results: saving sweep %q: %w", s.Name, err)
	}
	if err := os.Rename(tmp.Name(), st.Path(s.Name)); err != nil {
		return fmt.Errorf("results: saving sweep %q: %w", s.Name, err)
	}
	return nil
}

// Load reads and validates the named sweep, rejecting an artifact whose
// embedded name disagrees with its file name.
func (st *Store) Load(name string) (*Sweep, error) {
	if err := st.checkName(name); err != nil {
		return nil, err
	}
	f, err := os.Open(st.Path(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := DecodeJSON(f)
	if err != nil {
		return nil, fmt.Errorf("results: loading sweep %q: %w", name, err)
	}
	if s.Name != name {
		return nil, fmt.Errorf("results: artifact %s holds sweep %q", st.Path(name), s.Name)
	}
	return s, nil
}

// Names lists the sweeps stored in the directory, sorted.
func (st *Store) Names() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(st.dir, "*.json"))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(paths))
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ".json")
		if nameRE.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Entry describes one stored artifact, for consumers that need more than
// the name — the simulation service orders its rebuilt run index by
// ModTime, oldest first, so its cache bound evicts the stalest runs.
type Entry struct {
	Name    string
	Size    int64
	ModTime time.Time
}

// List returns one Entry per stored artifact, sorted by name. An artifact
// that disappears between the directory scan and its stat (a concurrent
// writer's rename) is skipped rather than erred on.
func (st *Store) List() ([]Entry, error) {
	names, err := st.Names()
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, 0, len(names))
	for _, name := range names {
		info, err := os.Stat(st.Path(name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("results: listing store: %w", err)
		}
		entries = append(entries, Entry{Name: name, Size: info.Size(), ModTime: info.ModTime()})
	}
	return entries, nil
}

// metaDir is where per-artifact metadata sidecars live. A subdirectory
// keeps them out of the *.json artifact namespace that Names, List and
// CI's validateresults glob over.
func (st *Store) metaDir() string { return filepath.Join(st.dir, "meta") }

// MetaPath returns where the named artifact's metadata sidecar lives,
// without checking that it exists.
func (st *Store) MetaPath(name string) string {
	return filepath.Join(st.metaDir(), name+".json")
}

// SaveMeta writes a small JSON metadata document next to (but outside the
// namespace of) the named artifact, atomically. The sidecar is the
// service's durable run index entry: whatever a consumer needs to trust a
// stored artifact again after a restart without re-deriving it.
func (st *Store) SaveMeta(name string, v any) error {
	if err := st.checkName(name); err != nil {
		return err
	}
	if err := os.MkdirAll(st.metaDir(), 0o755); err != nil {
		return fmt.Errorf("results: creating meta directory: %w", err)
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("results: encoding meta for %q: %w", name, err)
	}
	tmp, err := os.CreateTemp(st.metaDir(), "."+name+".tmp-*")
	if err != nil {
		return fmt.Errorf("results: saving meta for %q: %w", name, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("results: saving meta for %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("results: saving meta for %q: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), st.MetaPath(name)); err != nil {
		return fmt.Errorf("results: saving meta for %q: %w", name, err)
	}
	return nil
}

// tracesDir is where per-run timeline traces live. Like meta, the
// subdirectory keeps them out of the *.json artifact namespace that
// Names, List and CI's validateresults glob over.
func (st *Store) tracesDir() string { return filepath.Join(st.dir, "traces") }

// TracePath returns where the named run's timeline trace lives, without
// checking that it exists.
func (st *Store) TracePath(name string) string {
	return filepath.Join(st.tracesDir(), name+".json")
}

// SaveTrace writes the named run's timeline trace atomically, streaming
// the document through write (typically telemetry.(*Timeline).Encode).
func (st *Store) SaveTrace(name string, write func(io.Writer) error) error {
	if err := st.checkName(name); err != nil {
		return err
	}
	if err := os.MkdirAll(st.tracesDir(), 0o755); err != nil {
		return fmt.Errorf("results: creating traces directory: %w", err)
	}
	tmp, err := os.CreateTemp(st.tracesDir(), "."+name+".tmp-*")
	if err != nil {
		return fmt.Errorf("results: saving trace for %q: %w", name, err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("results: saving trace for %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("results: saving trace for %q: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), st.TracePath(name)); err != nil {
		return fmt.Errorf("results: saving trace for %q: %w", name, err)
	}
	return nil
}

// LoadTrace reads the named run's timeline trace. The bytes are returned
// as written; callers that need structure decode the Chrome trace-event
// JSON themselves.
func (st *Store) LoadTrace(name string) ([]byte, error) {
	if err := st.checkName(name); err != nil {
		return nil, err
	}
	return os.ReadFile(st.TracePath(name))
}

// LoadMeta reads the named artifact's metadata sidecar into v, rejecting
// unknown fields so a corrupted or foreign document fails loudly instead
// of decoding into a half-empty value.
func (st *Store) LoadMeta(name string, v any) error {
	if err := st.checkName(name); err != nil {
		return err
	}
	b, err := os.ReadFile(st.MetaPath(name))
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("results: loading meta for %q: %w", name, err)
	}
	return nil
}
