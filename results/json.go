package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// jsonSweep is the wire form of a Sweep (see the package documentation's
// schema). Rows are objects keyed by column name so artifacts stay
// self-describing when inspected by hand or by column-name consumers.
type jsonSweep struct {
	Schema  string             `json:"schema"`
	Name    string             `json:"name"`
	Title   string             `json:"title,omitempty"`
	Mode    string             `json:"mode,omitempty"`
	Params  map[string]string  `json:"params,omitempty"`
	Columns []Column           `json:"columns"`
	Rows    []map[string]any   `json:"rows"`
	Derived map[string]float64 `json:"derived,omitempty"`
	Notes   []string           `json:"notes,omitempty"`
}

// EncodeJSON validates s and writes it as one indented JSON object
// followed by a newline.
func EncodeJSON(w io.Writer, s *Sweep) error {
	b, err := marshalSweep(s)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// EncodeJSONList validates every sweep and writes them as one indented
// JSON array followed by a newline.
func EncodeJSONList(w io.Writer, sweeps []*Sweep) error {
	var buf bytes.Buffer
	buf.WriteString("[")
	for i, s := range sweeps {
		b, err := marshalSweep(s)
		if err != nil {
			return err
		}
		if i > 0 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
		buf.Write(b)
	}
	if len(sweeps) > 0 {
		buf.WriteString("\n")
	}
	buf.WriteString("]\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// marshalSweep validates and renders one sweep to indented JSON.
func marshalSweep(s *Sweep) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	js := jsonSweep{
		Schema:  Schema,
		Name:    s.Name,
		Title:   s.Title,
		Mode:    s.Mode,
		Params:  s.Params,
		Columns: s.Columns,
		Rows:    make([]map[string]any, len(s.Rows)),
		Derived: s.Derived,
		Notes:   s.Notes,
	}
	for i, rec := range s.Rows {
		row := make(map[string]any, len(rec))
		for j, cell := range rec {
			row[s.Columns[j].Name] = cell
		}
		js.Rows[i] = row
	}
	return json.MarshalIndent(js, "", "  ")
}

// DecodeJSON reads one Sweep written by EncodeJSON, rejecting unknown
// schema versions, rows that miss or add columns, and cells of the wrong
// type. The returned sweep is validated and compares equal (DeepEqual) to
// the encoded one.
func DecodeJSON(r io.Reader) (*Sweep, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var js jsonSweep
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("results: decoding JSON sweep: %w", err)
	}
	if js.Schema != Schema {
		return nil, fmt.Errorf("results: unknown schema %q (want %q)", js.Schema, Schema)
	}
	s := &Sweep{
		Name:    js.Name,
		Title:   js.Title,
		Mode:    js.Mode,
		Params:  js.Params,
		Columns: js.Columns,
		Derived: js.Derived,
		Notes:   js.Notes,
	}
	for i, row := range js.Rows {
		if len(row) != len(js.Columns) {
			return nil, fmt.Errorf("results: sweep %q: row %d has %d fields, schema has %d columns", js.Name, i, len(row), len(js.Columns))
		}
		rec := make(Record, len(js.Columns))
		for j, c := range js.Columns {
			raw, ok := row[c.Name]
			if !ok {
				return nil, fmt.Errorf("results: sweep %q: row %d misses column %q", js.Name, i, c.Name)
			}
			cell, err := cellFromJSON(c, raw)
			if err != nil {
				return nil, fmt.Errorf("results: sweep %q: row %d: %w", js.Name, i, err)
			}
			rec[j] = cell
		}
		s.Rows = append(s.Rows, rec)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// cellFromJSON converts a decoded JSON value (string or json.Number) to
// the column's canonical cell type.
func cellFromJSON(c Column, raw any) (any, error) {
	switch c.Kind {
	case String:
		if v, ok := raw.(string); ok {
			return v, nil
		}
	case Int, Duration:
		if n, ok := raw.(json.Number); ok {
			v, err := n.Int64()
			if err != nil {
				return nil, fmt.Errorf("column %q: %q is not an int64", c.Name, n)
			}
			return v, nil
		}
	case Float:
		if n, ok := raw.(json.Number); ok {
			v, err := n.Float64()
			if err != nil {
				return nil, fmt.Errorf("column %q: %q is not a float64", c.Name, n)
			}
			return v, nil
		}
	}
	return nil, fmt.Errorf("column %q (%s): JSON value %v has wrong type", c.Name, c.Kind, raw)
}
