package results

import (
	"fmt"
	"math"
	"reflect"
	"regexp"
	"strings"
)

// Schema identifies the record layout this package reads and writes. It
// only changes when a released field is renamed or retyped (see the
// package documentation's stability guarantee).
const Schema = "atlahs.results/v1"

// Kind is a column's cell type.
type Kind string

// Column kinds. Duration cells are simulated time as integer picoseconds
// (the base unit of internal/simtime), kept distinct from plain integers
// so consumers can format them as time without guessing from units.
const (
	String   Kind = "string"
	Int      Kind = "int"
	Float    Kind = "float"
	Duration Kind = "duration"
)

// valid reports whether k is a known column kind.
func (k Kind) valid() bool {
	switch k {
	case String, Int, Float, Duration:
		return true
	}
	return false
}

// Column describes one field of every Record in a Sweep.
type Column struct {
	// Name is the snake_case field key ("measured", "lgs_err_pct", ...).
	Name string `json:"name"`
	// Kind is the cell type.
	Kind Kind `json:"kind"`
	// Unit optionally names the value's unit ("ps", "%", "B", ...).
	Unit string `json:"unit,omitempty"`
}

// Record is one row of a Sweep: cells aligned with the Sweep's Columns.
// Cells hold canonical types only — string for String columns, int64 for
// Int and Duration columns, float64 for Float columns — which AddRow
// enforces, so decoded sweeps compare equal to the originals.
type Record []any

// Sweep is one experiment's structured output: a typed table of
// configuration points plus the experiment-level scalars around it.
type Sweep struct {
	// Name is the machine-readable experiment key ("fig8", "table1", ...).
	Name string
	// Title is the human heading (the text report's underlined header).
	Title string
	// Mode records the sizing the sweep ran at ("quick", "full").
	Mode string
	// Params are experiment-level inputs worth preserving with the data
	// (workload sizes, layouts, cluster shapes).
	Params map[string]string
	// Columns is the row schema.
	Columns []Column
	// Rows are the configuration points, in presentation order.
	Rows []Record
	// Derived are aggregates computed across rows (worst-case errors,
	// degradation deltas).
	Derived map[string]float64
	// Notes carry the report's free-text commentary lines.
	Notes []string
}

// NewSweep starts an empty sweep with the identifying metadata set.
func NewSweep(name, title, mode string) *Sweep {
	return &Sweep{Name: name, Title: title, Mode: mode}
}

// AddColumn appends a column to the schema and returns the sweep for
// chaining. It must be called before the first AddRow.
func (s *Sweep) AddColumn(name string, kind Kind, unit string) *Sweep {
	s.Columns = append(s.Columns, Column{Name: name, Kind: kind, Unit: unit})
	return s
}

// AddRow appends one record, coercing each cell to its column's canonical
// type (any integer kind for Int/Duration — including simtime.Duration and
// time.Duration — any float or integer for Float, string or fmt.Stringer
// for String). A cell count or type mismatch is an error.
func (s *Sweep) AddRow(cells ...any) error {
	if len(cells) != len(s.Columns) {
		return fmt.Errorf("results: sweep %q row has %d cells, schema has %d columns", s.Name, len(cells), len(s.Columns))
	}
	rec := make(Record, len(cells))
	for i, cell := range cells {
		v, err := coerce(s.Columns[i], cell)
		if err != nil {
			return fmt.Errorf("results: sweep %q row %d: %w", s.Name, len(s.Rows), err)
		}
		rec[i] = v
	}
	s.Rows = append(s.Rows, rec)
	return nil
}

// MustAddRow is AddRow for statically-shaped rows, panicking on mismatch
// (a programming error in the producing experiment, not a data condition).
func (s *Sweep) MustAddRow(cells ...any) {
	if err := s.AddRow(cells...); err != nil {
		panic(err)
	}
}

// SetParam records an experiment-level input.
func (s *Sweep) SetParam(key, value string) {
	if s.Params == nil {
		s.Params = map[string]string{}
	}
	s.Params[key] = value
}

// SetDerived records a cross-row aggregate.
func (s *Sweep) SetDerived(key string, value float64) {
	if s.Derived == nil {
		s.Derived = map[string]float64{}
	}
	s.Derived[key] = value
}

// Note appends commentary lines.
func (s *Sweep) Note(lines ...string) {
	s.Notes = append(s.Notes, lines...)
}

// ColumnIndex returns the index of the named column, or -1.
func (s *Sweep) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// coerce converts cell to the canonical type of column c.
func coerce(c Column, cell any) (any, error) {
	switch c.Kind {
	case String:
		if v, ok := cell.(string); ok {
			return v, nil
		}
		if v, ok := cell.(fmt.Stringer); ok {
			return v.String(), nil
		}
	case Int, Duration:
		rv := reflect.ValueOf(cell)
		switch rv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			return rv.Int(), nil
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			u := rv.Uint()
			if u > math.MaxInt64 {
				return nil, fmt.Errorf("column %q: value %d overflows int64", c.Name, u)
			}
			return int64(u), nil
		}
	case Float:
		rv := reflect.ValueOf(cell)
		switch rv.Kind() {
		case reflect.Float32, reflect.Float64:
			return rv.Float(), nil
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			return float64(rv.Int()), nil
		}
	}
	return nil, fmt.Errorf("column %q (%s): cannot hold %T value", c.Name, c.Kind, cell)
}

// nameRE constrains names that become JSON keys and CSV header cells.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Validate checks the sweep against the schema contract: identifying
// metadata present and single-line, snake_case column and key names, cells
// matching their column kinds, and every numeric value finite (NaN and
// infinities have no JSON encoding). Both encoders validate before
// writing; CI's artifact check is DecodeJSON, which validates after
// reading.
func (s *Sweep) Validate() error {
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("results: sweep name %q is not a snake_case identifier", s.Name)
	}
	for _, line := range append([]string{s.Title, s.Mode}, s.Notes...) {
		if strings.ContainsAny(line, "\n\r") {
			return fmt.Errorf("results: sweep %q: metadata line %q spans multiple lines", s.Name, line)
		}
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("results: sweep %q has no columns", s.Name)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if !nameRE.MatchString(c.Name) {
			return fmt.Errorf("results: sweep %q: column name %q is not a snake_case identifier", s.Name, c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("results: sweep %q: duplicate column %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		if !c.Kind.valid() {
			return fmt.Errorf("results: sweep %q: column %q has unknown kind %q", s.Name, c.Name, c.Kind)
		}
		if strings.ContainsAny(c.Unit, ":,\n\r") {
			return fmt.Errorf("results: sweep %q: column %q unit %q contains reserved characters", s.Name, c.Name, c.Unit)
		}
	}
	for key := range s.Params {
		if !nameRE.MatchString(key) {
			return fmt.Errorf("results: sweep %q: param key %q is not a snake_case identifier", s.Name, key)
		}
		if strings.ContainsAny(s.Params[key], "\n\r") {
			return fmt.Errorf("results: sweep %q: param %q value spans multiple lines", s.Name, key)
		}
	}
	for key, v := range s.Derived {
		if !nameRE.MatchString(key) {
			return fmt.Errorf("results: sweep %q: derived key %q is not a snake_case identifier", s.Name, key)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("results: sweep %q: derived %q is %v", s.Name, key, v)
		}
	}
	for i, rec := range s.Rows {
		if len(rec) != len(s.Columns) {
			return fmt.Errorf("results: sweep %q: row %d has %d cells, schema has %d columns", s.Name, i, len(rec), len(s.Columns))
		}
		for j, cell := range rec {
			c := s.Columns[j]
			switch c.Kind {
			case String:
				v, ok := cell.(string)
				if !ok {
					return fmt.Errorf("results: sweep %q: row %d column %q: %T is not a string", s.Name, i, c.Name, cell)
				}
				if strings.ContainsAny(v, "\n\r") {
					return fmt.Errorf("results: sweep %q: row %d column %q spans multiple lines", s.Name, i, c.Name)
				}
			case Int, Duration:
				if _, ok := cell.(int64); !ok {
					return fmt.Errorf("results: sweep %q: row %d column %q: %T is not an int64", s.Name, i, c.Name, cell)
				}
			case Float:
				v, ok := cell.(float64)
				if !ok {
					return fmt.Errorf("results: sweep %q: row %d column %q: %T is not a float64", s.Name, i, c.Name, cell)
				}
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("results: sweep %q: row %d column %q is %v", s.Name, i, c.Name, v)
				}
			}
		}
	}
	return nil
}
