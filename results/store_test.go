package results

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func storeSweep(name string) *Sweep {
	s := NewSweep(name, "store test", "quick")
	s.AddColumn("rank", Int, "")
	s.AddColumn("end", Duration, "ps")
	s.MustAddRow(int64(0), int64(100))
	s.MustAddRow(int64(1), int64(250))
	s.SetDerived("runtime_ps", 250)
	return s
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := storeSweep("r_0a1b2c3d4e5f6789")
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(st.Path(want.Name)); err != nil {
		t.Fatalf("artifact not at Path(): %v", err)
	}
	if base := filepath.Base(st.Path(want.Name)); base != want.Name+".json" {
		t.Fatalf("artifact file %q, want %q", base, want.Name+".json")
	}
	got, err := st.Load(want.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the sweep:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestStoreRejectsBadNames(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "../escape", "No-Caps", "has space", "0starts_with_digit"} {
		if err := st.Save(storeSweep(name)); err == nil {
			t.Fatalf("Save accepted name %q", name)
		}
		if _, err := st.Load(name); err == nil {
			t.Fatalf("Load accepted name %q", name)
		}
	}
}

func TestStoreLoadChecksEmbeddedName(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(storeSweep("real_name")); err != nil {
		t.Fatal(err)
	}
	// A renamed artifact must not masquerade as another run.
	if err := os.Rename(st.Path("real_name"), st.Path("other_name")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("other_name"); err == nil || !strings.Contains(err.Error(), "holds sweep") {
		t.Fatalf("Load of a renamed artifact: %v", err)
	}
}

func TestStoreNames(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := st.Save(storeSweep(name)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.Names()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestStoreMissingLoad(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("absent"); err == nil {
		t.Fatal("Load of a missing artifact succeeded")
	}
}
