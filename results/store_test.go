package results

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func storeSweep(name string) *Sweep {
	s := NewSweep(name, "store test", "quick")
	s.AddColumn("rank", Int, "")
	s.AddColumn("end", Duration, "ps")
	s.MustAddRow(int64(0), int64(100))
	s.MustAddRow(int64(1), int64(250))
	s.SetDerived("runtime_ps", 250)
	return s
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := storeSweep("r_0a1b2c3d4e5f6789")
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(st.Path(want.Name)); err != nil {
		t.Fatalf("artifact not at Path(): %v", err)
	}
	if base := filepath.Base(st.Path(want.Name)); base != want.Name+".json" {
		t.Fatalf("artifact file %q, want %q", base, want.Name+".json")
	}
	got, err := st.Load(want.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the sweep:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestStoreRejectsBadNames(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "../escape", "No-Caps", "has space", "0starts_with_digit"} {
		if err := st.Save(storeSweep(name)); err == nil {
			t.Fatalf("Save accepted name %q", name)
		}
		if _, err := st.Load(name); err == nil {
			t.Fatalf("Load accepted name %q", name)
		}
	}
}

func TestStoreLoadChecksEmbeddedName(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(storeSweep("real_name")); err != nil {
		t.Fatal(err)
	}
	// A renamed artifact must not masquerade as another run.
	if err := os.Rename(st.Path("real_name"), st.Path("other_name")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("other_name"); err == nil || !strings.Contains(err.Error(), "holds sweep") {
		t.Fatalf("Load of a renamed artifact: %v", err)
	}
}

func TestStoreNames(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := st.Save(storeSweep(name)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.Names()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

// TestStoreList: List describes each artifact with its size, and skips
// nothing Names would report.
func TestStoreList(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"beta", "alpha"} {
		if err := st.Save(storeSweep(name)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "alpha" || entries[1].Name != "beta" {
		t.Fatalf("List() = %+v, want alpha then beta", entries)
	}
	for _, e := range entries {
		if e.Size <= 0 || e.ModTime.IsZero() {
			t.Fatalf("entry %+v misses size or mtime", e)
		}
	}
}

// TestStoreMeta: metadata sidecars round-trip, live outside the artifact
// namespace (Names and List never report them), and reject unknown fields
// on load.
func TestStoreMeta(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type doc struct {
		Schema string `json:"schema"`
		Count  int    `json:"count"`
	}
	if err := st.SaveMeta("run_one", doc{Schema: "test/v1", Count: 7}); err != nil {
		t.Fatal(err)
	}
	var got doc
	if err := st.LoadMeta("run_one", &got); err != nil {
		t.Fatal(err)
	}
	if got != (doc{Schema: "test/v1", Count: 7}) {
		t.Fatalf("meta round trip changed the document: %+v", got)
	}
	names, err := st.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("sidecars leaked into the artifact namespace: %v", names)
	}
	if err := st.SaveMeta("../escape", doc{}); err == nil {
		t.Fatal("SaveMeta accepted a path-escaping name")
	}
	if err := st.LoadMeta("missing", &got); err == nil {
		t.Fatal("LoadMeta of a missing sidecar succeeded")
	}
	// A document with fields the caller's type does not know must fail
	// loudly, not decode half-empty.
	if err := os.WriteFile(st.MetaPath("run_one"), []byte(`{"schema":"test/v1","count":1,"extra":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.LoadMeta("run_one", &got); err == nil {
		t.Fatal("LoadMeta decoded a document with unknown fields")
	}
}

func TestStoreMissingLoad(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("absent"); err == nil {
		t.Fatal("Load of a missing artifact succeeded")
	}
}
