// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact, quick-sized) plus substrate micro-benches.
// Run with:
//
//	go test -bench=. -benchmem
package atlahs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"atlahs/internal/astra"
	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/experiments"
	"atlahs/internal/goal"
	"atlahs/internal/sched"
	"atlahs/internal/service"
	"atlahs/internal/trace/chakra"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/trace/schedgen"
	"atlahs/internal/workload/hpcapps"
	"atlahs/internal/workload/llm"
	"atlahs/internal/workload/micro"
	"atlahs/sim"
)

func astraSimulate(tr *chakra.Trace) (*astra.Result, error) {
	return astra.Simulate(tr, astra.Config{})
}

// --- one benchmark per paper table/figure -----------------------------------

func BenchmarkFig1C(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1C(io.Discard, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(io.Discard, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(io.Discard, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(io.Discard, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(io.Discard, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(io.Discard, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(io.Discard, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(io.Discard, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations: the design choices DESIGN.md calls out -----------------------

// BenchmarkAblationEagerVsRendezvous measures the LGS rendezvous handshake
// cost at the protocol switch point.
func BenchmarkAblationEagerVsRendezvous(b *testing.B) {
	mk := func(size int64) *goal.Schedule {
		bl := goal.NewBuilder(2)
		for i := 0; i < 100; i++ {
			bl.Rank(0).Send(size, 1, int32(i))
			bl.Rank(1).Recv(size, 0, int32(i))
		}
		return bl.MustBuild()
	}
	for _, c := range []struct {
		name string
		size int64
	}{{"eager-255KB", 255 * 1000}, {"rendezvous-256KB", 256 * 1000}} {
		b.Run(c.name, func(b *testing.B) {
			s := mk(c.size)
			for i := 0; i < b.N; i++ {
				if _, err := sched.Run(engine.New(), s, backend.NewLGS(backend.HPCParams()), sched.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNCCLChannels measures pipeline + simulation cost across
// NCCL channel counts.
func BenchmarkAblationNCCLChannels(b *testing.B) {
	rep, err := llm.Generate(llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 1, DP: 8, EP: 1, GlobalBatch: 16},
		Scale: 1e-4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, ch := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "1ch", 2: "2ch", 4: "4ch"}[ch], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: 4, Channels: ch})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGoalEncodings compares binary and text GOAL encodings.
func BenchmarkAblationGoalEncodings(b *testing.B) {
	tr, err := hpcapps.Generate(hpcapps.Config{App: hpcapps.LULESH, Ranks: 27, Steps: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s, err := schedgen.Generate(tr, schedgen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := goal.WriteBinary(io.Discard, s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("text", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := goal.WriteText(io.Discard, s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- parallel simulation subsystem -------------------------------------------

// BenchmarkParEngineVsSerial is the paired serial-vs-parallel measurement
// for the sharded engine (paper §5's parallelised LogGOPSim): the same
// multi-rank LGS workloads on the serial engine and on the parallel engine
// at 1/2/4/8 workers. Results are bit-identical (see
// TestParallelLGSMatchesSerial); only wall-clock should move. Two effects
// stack: per-lane event queues are ~P times shallower than the serial
// engine's single global heap (visible even on one core), and on
// multi-core hosts the lanes execute concurrently inside each lookahead
// window.
func BenchmarkParEngineVsSerial(b *testing.B) {
	for _, wl := range []struct {
		name string
		s    *goal.Schedule
	}{
		{"bsp-128x6", micro.BulkSynchronous(128, 6, 65536, 3000)},
		{"alltoall-128", micro.AllToAll(128, 131072)},
	} {
		s := wl.s
		ops := int64(s.ComputeStats().Ops)
		run := func(b *testing.B, do func() (*sched.Result, error)) {
			for i := 0; i < b.N; i++ {
				res, err := do()
				if err != nil {
					b.Fatal(err)
				}
				if res.Ops != ops {
					b.Fatal("incomplete run")
				}
			}
		}
		b.Run(wl.name+"/serial", func(b *testing.B) {
			run(b, func() (*sched.Result, error) {
				return sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
			})
		})
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers-%d", wl.name, workers), func(b *testing.B) {
				// Construct the parallel engine directly: RunParallel would
				// route workers=1 to the serial engine, and this pairing is
				// about ParEngine behaviour at every worker count.
				run(b, func() (*sched.Result, error) {
					be := backend.NewLGS(backend.AIParams())
					eng := engine.NewParallel(s.NumRanks(), workers, be.Lookahead())
					return sched.Run(eng, s, be, sched.Options{})
				})
			})
		}
	}
}

// BenchmarkExperimentSweepVsSerial measures the concurrent experiment
// runner: the full quick-mode evaluation executed serially versus fanned
// out across 4 workers (independent experiments and configuration points).
func BenchmarkExperimentSweepVsSerial(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.RunAll(io.Discard, experiments.Quick, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- simulation service --------------------------------------------------------

// BenchmarkServiceColdVsCacheHit is the paired measurement behind the
// service subsystem's claim: an identical re-submission is answered from
// the content-addressed run cache without simulating, so the hit path
// (fingerprint + lookup) must be orders of magnitude (>= 100x) faster
// than the cold path (fingerprint + queue + full simulation + artifact
// export) on the same spec.
func BenchmarkServiceColdVsCacheHit(b *testing.B) {
	spec := sim.Spec{Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "alltoall", Ranks: 32, Bytes: 65536}},
		Backend: "lgs"}
	wait := func(b *testing.B, svc *service.Service, snap service.Snapshot) service.Snapshot {
		done, err := svc.Wait(context.Background(), snap.ID)
		if err != nil {
			b.Fatal(err)
		}
		if done.Status != service.StatusDone {
			b.Fatalf("run %s ended %s: %s", done.ID, done.Status, done.Err)
		}
		return done
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc, err := service.New(service.Config{Jobs: 1, Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			snap, err := svc.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			wait(b, svc, snap)
			svc.Close()
		}
	})
	b.Run("hit", func(b *testing.B) {
		svc, err := service.New(service.Config{Jobs: 1, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		first, err := svc.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		wait(b, svc, first)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap, err := svc.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			if !snap.Cached || snap.Status != service.StatusDone || snap.Result == nil {
				b.Fatalf("re-submission missed the cache: %+v", snap)
			}
		}
	})
}

// --- substrate throughput -----------------------------------------------------

// BenchmarkLGSimulationThroughput measures scheduler+LGS ops/second on an
// incast-heavy schedule.
func BenchmarkLGSimulationThroughput(b *testing.B) {
	s := micro.AllToAll(16, 4096)
	ops := int64(s.ComputeStats().Ops)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sched.Run(engine.New(), s, backend.NewLGS(backend.AIParams()), sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Ops != ops {
			b.Fatal("incomplete run")
		}
	}
	b.ReportMetric(float64(ops), "goalops/op")
}

// BenchmarkSimRuntimeLGSvsAstra is the paper's §5.2 wall-clock comparison
// in benchmark form: simulating the same DP workload via GOAL+LGS versus
// the Chakra+astra baseline.
func BenchmarkSimRuntimeLGSvsAstra(b *testing.B) {
	cfg := llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 1, DP: 16, EP: 1, GlobalBatch: 32},
		Scale: 1e-3, Seed: 1,
	}
	// both sides time the full workflow: load serialised trace + simulate
	b.Run("atlahs-lgs", func(b *testing.B) {
		rep, err := llm.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: 4})
		if err != nil {
			b.Fatal(err)
		}
		var bin bytes.Buffer
		if err := goal.WriteBinary(&bin, s); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loaded, err := goal.ReadBinary(bytes.NewReader(bin.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sched.Run(engine.New(), loaded, backend.NewLGS(backend.AIParams()), sched.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("astra-baseline", func(b *testing.B) {
		tr, err := llm.GenerateChakra(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var bin bytes.Buffer
		if _, err := tr.WriteTo(&bin); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loaded, err := chakra.Parse(bytes.NewReader(bin.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := astraSimulate(loaded); err != nil {
				b.Fatal(err)
			}
		}
	})
}
