package sim

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"atlahs/internal/goal"
	"atlahs/internal/storage/directdrive"
	"atlahs/internal/trace/chakra"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/trace/schedgen"
	"atlahs/internal/trace/spc"
	"atlahs/internal/workload/hpcapps"
	"atlahs/internal/workload/llm"
	"atlahs/internal/workload/micro"
	"atlahs/internal/workload/oltp"
)

// frontendCase pairs one frontend's serialised trace with the schedule
// its hand-wired converter produces — the old convert-then-run path the
// registry must reproduce exactly.
type frontendCase struct {
	frontend string
	raw      []byte
	want     *goal.Schedule
}

// frontendCases builds one small trace per registered built-in frontend.
func frontendCases(t *testing.T) []frontendCase {
	t.Helper()
	var cases []frontendCase

	// goal (binary and text renderings of the same schedule)
	ring := micro.Ring(6, 4096)
	var bin, txt bytes.Buffer
	if err := goal.WriteBinary(&bin, ring); err != nil {
		t.Fatal(err)
	}
	if err := goal.WriteText(&txt, ring); err != nil {
		t.Fatal(err)
	}
	cases = append(cases,
		frontendCase{"goal", bin.Bytes(), ring},
		frontendCase{"goal", txt.Bytes(), ring},
	)

	// nsys via the 4-stage NCCL pipeline
	rep, err := llm.Generate(llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 1, DP: 8, EP: 1, GlobalBatch: 8},
		Scale: 1e-4,
		Seed:  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var nsysBuf bytes.Buffer
	if _, err := rep.WriteTo(&nsysBuf); err != nil {
		t.Fatal(err)
	}
	nsysSched, err := ncclgoal.Generate(rep, ncclgoal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, frontendCase{"nsys", nsysBuf.Bytes(), nsysSched})

	// mpi via Schedgen
	tr, err := hpcapps.Generate(hpcapps.Config{App: hpcapps.LULESH, Ranks: 4, Steps: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var mpiBuf bytes.Buffer
	if _, err := tr.WriteTo(&mpiBuf); err != nil {
		t.Fatal(err)
	}
	mpiSched, err := schedgen.Generate(tr, schedgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, frontendCase{"mpi", mpiBuf.Bytes(), mpiSched})

	// spc via the Direct Drive model. The hand-wired path starts from the
	// serialised artifact (CSV timestamps are %.6f), so the reference
	// conversion parses the same bytes the frontend will see.
	var spcBuf bytes.Buffer
	if _, err := oltp.GenerateFinancial(oltp.FinancialConfig{Ops: 60, Seed: 5}).WriteTo(&spcBuf); err != nil {
		t.Fatal(err)
	}
	spcTrace, err := spc.Parse(bytes.NewReader(spcBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	spcSched, _, err := directdrive.Generate(spcTrace, directdrive.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, frontendCase{"spc", spcBuf.Bytes(), spcSched})

	// chakra via the execution-trace converter
	ct := chakraFixture()
	var ctBuf bytes.Buffer
	if _, err := ct.WriteTo(&ctBuf); err != nil {
		t.Fatal(err)
	}
	ctSched, err := chakra.ToGOAL(ct, chakra.ConvertConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, frontendCase{"chakra", ctBuf.Bytes(), ctSched})

	return cases
}

// chakraFixture builds a 4-rank Chakra trace exercising compute nodes,
// world-group collectives and point-to-point nodes.
func chakraFixture() *chakra.Trace {
	t := &chakra.Trace{Ranks: make([][]chakra.Node, 4)}
	for r := 0; r < 4; r++ {
		var b chakra.Builder
		b.AddComp("fwd", int64(1000*(r+1)))
		b.AddColl(chakra.CollAllReduce, 1<<16, "world")
		b.AddComp("opt", 500)
		if r == 0 {
			b.AddSend(4096, 1, 7)
		}
		if r == 1 {
			b.AddRecv(4096, 0, 7)
		}
		t.Ranks[r] = b.Nodes()
	}
	return t
}

// runResult zeroes a Result's host-time measurement so runs compare
// deterministically.
func runResult(t *testing.T, spec Spec) *Result {
	t.Helper()
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res.Wall = 0
	return res
}

// TestFrontendGoldenEquivalence pins the tentpole contract: for every
// registered frontend, sim.Run on the raw trace — from a path and from
// bytes, format-sniffed and explicitly named — produces results identical
// to running the hand-converted schedule through the old Schedule path.
func TestFrontendGoldenEquivalence(t *testing.T) {
	dir := t.TempDir()
	for i, c := range frontendCases(t) {
		want := runResult(t, Spec{Workload: Workload{Schedule: c.want}})

		// Extension-free filename, so path-based runs exercise content
		// sniffing rather than the extension fallback.
		path := filepath.Join(dir, "trace"+strings.Repeat("x", i+1))
		if err := os.WriteFile(path, c.raw, 0o644); err != nil {
			t.Fatal(err)
		}
		variants := map[string]Spec{
			"bytes-sniffed": {Workload: Workload{Trace: c.raw}},
			"bytes-named":   {Workload: Workload{Trace: c.raw, Frontend: c.frontend}},
			"path-sniffed":  {Workload: Workload{TracePath: path}},
			"path-named":    {Workload: Workload{TracePath: path, Frontend: c.frontend}},
		}
		for label, spec := range variants {
			got := runResult(t, spec)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: result diverged from hand-converted schedule\ngot  %+v\nwant %+v",
					c.frontend, label, got, want)
			}
		}
	}
}

// TestFrontendExtensionFallback: an unsniffable payload still resolves by
// file extension.
func TestFrontendExtensionFallback(t *testing.T) {
	ring := micro.Ring(4, 512)
	var txt bytes.Buffer
	if err := goal.WriteText(&txt, ring); err != nil {
		t.Fatal(err)
	}
	// Leading junk defeats every sniffer but parses as a GOAL comment.
	raw := append([]byte("// "+strings.Repeat("padding ", 600)+"\n"), txt.Bytes()...)
	if len(raw) < 4096+len(txt.Bytes()) {
		t.Fatal("fixture must push num_ranks past the sniff window")
	}
	path := filepath.Join(t.TempDir(), "ring.goal")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	want := runResult(t, Spec{Workload: Workload{Schedule: ring}})
	got := runResult(t, Spec{Workload: Workload{TracePath: path}})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("extension-resolved run diverged")
	}
}

func TestFrontendErrors(t *testing.T) {
	ring := micro.Ring(4, 512)
	var bin bytes.Buffer
	if err := goal.WriteBinary(&bin, ring); err != nil {
		t.Fatal(err)
	}

	if _, err := Run(context.Background(), Spec{Workload: Workload{Trace: bin.Bytes(), Frontend: "nope"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown frontend") || !strings.Contains(err.Error(), "nsys") {
		t.Fatalf("unknown frontend error should list the registry, got %v", err)
	}
	if _, err := Run(context.Background(), Spec{Workload: Workload{Trace: []byte("total garbage, no format")}}); err == nil ||
		!strings.Contains(err.Error(), "cannot detect trace format") {
		t.Fatalf("undetectable trace should error, got %v", err)
	}
	// Config of the wrong type is a mismatch, not a silent default.
	if _, err := Run(context.Background(), Spec{Workload: Workload{Trace: bin.Bytes(), Frontend: "nsys", FrontendConfig: LGSConfig{}}}); err == nil ||
		!strings.Contains(err.Error(), "config") {
		t.Fatalf("config mismatch should error, got %v", err)
	}
	// Frontend fields without a trace workload are a spec error.
	if _, err := Run(context.Background(), Spec{Workload: Workload{Schedule: ring, Frontend: "goal"}}); err == nil ||
		!strings.Contains(err.Error(), "only meaningful with") {
		t.Fatalf("frontend without trace should error, got %v", err)
	}
	// The goal frontend takes no config at all.
	if _, err := Run(context.Background(), Spec{Workload: Workload{Trace: bin.Bytes(), FrontendConfig: struct{}{}}}); err == nil {
		t.Fatal("goal frontend with config should error")
	}
}

func TestFrontendsRegistry(t *testing.T) {
	names := Frontends()
	for _, want := range []string{"chakra", "goal", "mpi", "nsys", "spc"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("built-in frontend %q missing from %v", want, names)
		}
		if _, ok := LookupFrontend(want); !ok {
			t.Fatalf("LookupFrontend(%q) failed", want)
		}
	}
	if !sorted(names) {
		t.Fatalf("Frontends() not sorted: %v", names)
	}
}

func sorted(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}
