package sim

import (
	"fmt"
	"os"
	"strings"

	"atlahs/internal/goal"
	"atlahs/internal/trace/frontend"
	"atlahs/results"
)

// Workload declares one simulation workload source. It is embedded by both
// Spec (the single-workload top level) and JobSpec (one composed job), so
// the two accept exactly the same sources with one shared validate/resolve
// path; exactly one source must be set.
type Workload struct {
	// GoalPath names a GOAL schedule file, textual or binary (auto-detected
	// by the GOALB1 magic).
	GoalPath string
	// GoalBytes holds a serialised GOAL schedule, textual or binary
	// (auto-detected).
	GoalBytes []byte
	// Schedule is an in-memory GOAL schedule (e.g. from sim.NewBuilder or a
	// trace converter).
	Schedule *Schedule
	// Synthetic generates a microbenchmark traffic pattern through the
	// generator registry (its zero Seed inherits Spec.Seed).
	Synthetic *Synthetic
	// TracePath names a raw application trace file (nsys report, MPI
	// trace, SPC block-I/O trace, Chakra ET, or a GOAL file) to ingest
	// through the frontend registry. The format is auto-detected unless
	// Frontend names one explicitly.
	TracePath string
	// Trace holds a raw serialised application trace to ingest through the
	// frontend registry; see TracePath.
	Trace []byte
	// Frontend names the registered workload frontend converting TracePath
	// or Trace ("nsys", "mpi", "spc", "chakra", "goal", or a third-party
	// registration); "" auto-detects by content sniffing, then by file
	// extension.
	Frontend string
	// FrontendConfig is the frontend's typed configuration (e.g.
	// NsysConfig, MPIConfig, SPCConfig, ChakraConfig, or a third-party
	// frontend's own type). nil selects that frontend's defaults; a value
	// of the wrong type is an error, not a silent default.
	FrontendConfig any
	// Model generates a workload by sampling a mined statistical model
	// (schema atlahs.model/v1) at an arbitrary rank count. Its Doc carries
	// the model document inline; pair it with ModelPath to read the
	// document from a file instead.
	Model *ModelGen
	// ModelPath names an atlahs.model/v1 document file to sample. On its
	// own it generates at the model's source rank count with Spec.Seed;
	// set Model (with an empty Doc) alongside it to choose Ranks/Seed.
	ModelPath string
}

// ModelGen declares how a mined workload model is sampled back into a
// schedule (internal/workload/synth; see MineModel/GenerateFromModel).
type ModelGen struct {
	// Ranks is the generated schedule's rank count; 0 means the model's
	// SourceRanks.
	Ranks int
	// Seed seeds the deterministic sampler; 0 inherits Spec.Seed. The same
	// (model, ranks, seed) triple always generates a bit-identical
	// schedule.
	Seed uint64
	// Doc is the serialised atlahs.model/v1 document. Leave it empty when
	// the enclosing Workload names a ModelPath instead.
	Doc []byte
}

// workloadSourceList names every Workload source in declaration order, for
// error text.
const workloadSourceList = "GoalPath, GoalBytes, Schedule, Synthetic, TracePath, Trace, Model or ModelPath"

// sources counts the workload's sources. Model and ModelPath together
// describe one source (the path names the document, Model tunes the
// sampling), so they count once.
func (w *Workload) sources() int {
	n := 0
	if w.GoalPath != "" {
		n++
	}
	if len(w.GoalBytes) > 0 {
		n++
	}
	if w.Schedule != nil {
		n++
	}
	if w.Synthetic != nil {
		n++
	}
	if w.TracePath != "" {
		n++
	}
	if len(w.Trace) > 0 {
		n++
	}
	if w.Model != nil || w.ModelPath != "" {
		n++
	}
	return n
}

// validate checks the workload declaration without touching the
// filesystem: exactly one source, frontend fields only alongside a trace
// source, a resolvable frontend name, and synthetic/model parameters in
// range.
func (w *Workload) validate() error {
	switch n := w.sources(); n {
	case 0:
		return fmt.Errorf("sim: no workload; set one of %s", workloadSourceList)
	case 1:
	default:
		return fmt.Errorf("sim: %d workload sources; set exactly one of %s", n, workloadSourceList)
	}
	if (w.Frontend != "" || w.FrontendConfig != nil) && w.TracePath == "" && len(w.Trace) == 0 {
		return fmt.Errorf("sim: Frontend/FrontendConfig are only meaningful with a TracePath or Trace workload")
	}
	if w.Frontend != "" {
		if _, ok := frontend.Lookup(w.Frontend); !ok {
			return fmt.Errorf("sim: unknown frontend %q (registered: %s)", w.Frontend, strings.Join(frontend.Names(), ", "))
		}
	}
	if w.Synthetic != nil {
		return w.Synthetic.validate()
	}
	if w.Model != nil {
		if len(w.Model.Doc) > 0 && w.ModelPath != "" {
			return fmt.Errorf("sim: Model.Doc and ModelPath both set; carry the model document inline or by path, not both")
		}
		if len(w.Model.Doc) == 0 && w.ModelPath == "" {
			return fmt.Errorf("sim: Model needs a Doc (or a ModelPath naming the document file)")
		}
		if w.Model.Ranks < 0 {
			return fmt.Errorf("sim: Model.Ranks must be >= 0 (0 means the model's source rank count), got %d", w.Model.Ranks)
		}
	}
	return nil
}

// schedule resolves the workload source into a GOAL schedule.
func (w *Workload) schedule(topSeed uint64) (*goal.Schedule, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	switch {
	case w.GoalPath != "":
		return LoadGOAL(w.GoalPath)
	case len(w.GoalBytes) > 0:
		return DecodeGOAL(w.GoalBytes)
	case w.Schedule != nil:
		return w.Schedule, nil
	case w.Synthetic != nil:
		return w.Synthetic.generate(topSeed)
	case w.TracePath != "":
		return ConvertTraceFile(w.TracePath, w.Frontend, w.FrontendConfig)
	case len(w.Trace) > 0:
		return ConvertTrace(w.Trace, w.Frontend, w.FrontendConfig)
	default:
		return w.modelSchedule(topSeed)
	}
}

// modelSchedule loads the model document, decodes it, and samples it into
// a schedule through the registered model generator.
func (w *Workload) modelSchedule(topSeed uint64) (*goal.Schedule, error) {
	doc := []byte(nil)
	if w.Model != nil {
		doc = w.Model.Doc
	}
	if len(doc) == 0 {
		b, err := os.ReadFile(w.ModelPath)
		if err != nil {
			return nil, fmt.Errorf("sim: reading model document: %w", err)
		}
		doc = b
	}
	m, err := results.DecodeModelBytes(doc)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	ranks, seed := 0, uint64(0)
	if w.Model != nil {
		ranks, seed = w.Model.Ranks, w.Model.Seed
	}
	if seed == 0 {
		seed = topSeed
	}
	if seed == 0 {
		seed = 1
	}
	def, ok := LookupGenerator(modelGeneratorName)
	if !ok {
		return nil, fmt.Errorf("sim: no %q generator registered", modelGeneratorName)
	}
	return def.New(GenRequest{Model: m, Ranks: ranks, Seed: seed})
}
