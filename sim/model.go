package sim

import (
	"fmt"
	"io"

	"atlahs/internal/workload/synth"
	"atlahs/results"
)

// WorkloadModel is a statistical workload model (schema atlahs.model/v1):
// per-rank message-count, message-size and compute distributions mined
// from a resolved schedule, sampled back into schedules at arbitrary rank
// counts. The concrete type lives in atlahs/results alongside the other
// wire schemas.
type WorkloadModel = results.WorkloadModel

// MineModel extracts a statistical workload model from a resolved
// schedule (any source: a converted trace, a loaded GOAL file, a
// generated pattern). The comment is stored as provenance.
func MineModel(s *Schedule, comment string) (*WorkloadModel, error) {
	return synth.Mine(s, comment)
}

// EncodeModel writes a model as one canonical atlahs.model/v1 JSON
// document.
func EncodeModel(w io.Writer, m *WorkloadModel) error {
	return results.EncodeModelJSON(w, m)
}

// DecodeModel reads one atlahs.model/v1 JSON document.
func DecodeModel(r io.Reader) (*WorkloadModel, error) {
	return results.DecodeModelJSON(r)
}

// GenerateFromModel samples a model into a schedule with the given rank
// count (ranks <= 0 means the model's source rank count) through the
// registered model generator. Deterministic: the same (model, ranks,
// seed) always yields a bit-identical schedule.
func GenerateFromModel(m *WorkloadModel, ranks int, seed uint64) (*Schedule, error) {
	def, ok := LookupGenerator(modelGeneratorName)
	if !ok {
		return nil, fmt.Errorf("sim: no %q generator registered", modelGeneratorName)
	}
	if seed == 0 {
		seed = 1
	}
	return def.New(GenRequest{Model: m, Ranks: ranks, Seed: seed})
}
