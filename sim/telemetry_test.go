package sim

import (
	"bytes"
	"strings"
	"testing"
)

// metricValue pulls one sample out of a run's metrics snapshot.
func metricValue(t *testing.T, res *Result, name string) float64 {
	t.Helper()
	for _, m := range res.Metrics.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q missing from the run snapshot", name)
	return 0
}

// TestRunMetricsSnapshot: every run carries a valid atlahs.metrics/v1
// snapshot whose engine counters agree with the Result's own accounting.
func TestRunMetricsSnapshot(t *testing.T) {
	spec := Spec{Workload: Workload{Synthetic: &Synthetic{Pattern: "alltoall", Ranks: 8, Bytes: 4096}}}
	serial := runResult(t, spec)
	if serial.Metrics == nil {
		t.Fatal("serial run carries no metrics snapshot")
	}
	if err := serial.Metrics.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, serial, "atlahs_engine_events_total"); got != float64(serial.Events) {
		t.Fatalf("events metric %v, Result.Events %d", got, serial.Events)
	}
	if metricValue(t, serial, "atlahs_engine_peak_pending") <= 0 {
		t.Fatal("serial run recorded no queue-depth high-water mark")
	}
	if metricValue(t, serial, "atlahs_sched_peak_outstanding") <= 0 {
		t.Fatal("run recorded no scheduler in-flight high-water mark")
	}
	if got := metricValue(t, serial, "atlahs_engine_windows_total"); got != 0 {
		t.Fatalf("serial run counted %v conservative windows", got)
	}

	par := runResult(t, spec.withWorkers(4))
	if got := metricValue(t, par, "atlahs_engine_windows_total"); got <= 0 {
		t.Fatal("parallel run counted no conservative windows")
	}
	if metricValue(t, par, "atlahs_engine_active_lanes_total") <= 0 {
		t.Fatal("parallel run counted no active lanes")
	}
}

// withWorkers returns a copy of the spec with the worker budget set.
func (sp Spec) withWorkers(n int) Spec {
	sp.Workers = n
	return sp
}

// TestRunTimelineParallel: a parallel run with a recorder attached emits
// both op instants and per-lane window spans, and the document parses.
func TestRunTimelineParallel(t *testing.T) {
	tl := NewTimeline(0)
	res := runResult(t, Spec{
		Workload: Workload{Synthetic: &Synthetic{Pattern: "ring", Ranks: 8, Bytes: 4096}},
		Workers:  4,
		Timeline: tl,
	})
	if !res.Parallel {
		t.Fatal("wanted the parallel engine")
	}
	if int64(tl.Len()) <= res.Ops {
		t.Fatalf("timeline holds %d events for %d ops; window spans missing", tl.Len(), res.Ops)
	}
	var buf bytes.Buffer
	if err := tl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	if !strings.Contains(doc, `"name":"window","ph":"X"`) {
		t.Fatal("trace carries no window spans")
	}
	if !strings.Contains(doc, `"ph":"i"`) {
		t.Fatal("trace carries no op instants")
	}
}

// TestTimelineSpecCannotCrossWire mirrors the Observer rule: recorders
// are process-local hooks.
func TestTimelineSpecCannotCrossWire(t *testing.T) {
	_, err := MarshalSpec(Spec{
		Workload: Workload{Synthetic: &Synthetic{Pattern: "ring", Ranks: 2, Bytes: 64}},
		Timeline: NewTimeline(0),
	})
	if err == nil || !strings.Contains(err.Error(), "Timeline") {
		t.Fatalf("MarshalSpec accepted a Timeline spec: %v", err)
	}
}
