package sim

import (
	"atlahs/internal/backend"
	"atlahs/internal/core"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/simtime"
	"atlahs/internal/stats"
	"atlahs/internal/topo"
)

// Aliases re-export the toolchain types that appear in the facade API, so
// facade users name everything through this package.
type (
	// Schedule is a GOAL dependency program (one task DAG per rank).
	Schedule = goal.Schedule
	// ScheduleStats is the size accounting of a Schedule.
	ScheduleStats = goal.Stats
	// OpKind distinguishes calc, send and recv GOAL ops.
	OpKind = goal.Kind
	// Duration and Time are simulated picosecond durations/instants.
	Duration = simtime.Duration
	Time     = simtime.Time
	// LogGOPS holds the message-level model parameters (paper §5).
	LogGOPS = backend.LogGOPS
	// NetParams are the host-side overheads of the congestion-aware backends.
	NetParams = backend.NetParams
	// LinkSpec parameterises one link of a fabric topology.
	LinkSpec = topo.LinkSpec
	// Topology is an immutable fabric graph with precomputed paths.
	Topology = topo.Topology
	// Sample accumulates a metric distribution (e.g. message completion times).
	Sample = stats.Sample
)

// Aliases for the backend contract (paper Fig 7), so third-party
// simulators outside this module can implement core.Backend and register
// through this package without naming internal import paths: a factory is
// `func(cfg any, env sim.Env) (sim.Backend, error)` and its Setup method
// is `Setup(nranks int, eng sim.Engine, over sim.CompletionFunc) error`.
type (
	// Backend is the ATLAHS simulator interface the scheduler drives.
	Backend = core.Backend
	// Engine is the simulation-clock contract (serial or parallel) a
	// backend schedules its events on.
	Engine = engine.Sim
	// Handle identifies an issued operation.
	Handle = core.Handle
	// CompletionFunc is the eventOver callback.
	CompletionFunc = core.CompletionFunc
	// SendEvent, RecvEvent and CalcEvent are the three core operations.
	SendEvent = core.SendEvent
	RecvEvent = core.RecvEvent
	CalcEvent = core.CalcEvent
	// LookaheadProvider is implemented by backends whose model guarantees
	// a minimum cross-rank delay, enabling the parallel engine.
	LookaheadProvider = core.LookaheadProvider
)

// Aliases for the GOAL builder API, so schedules can be constructed
// programmatically without naming internal import paths.
type (
	// Builder incrementally constructs a Schedule.
	Builder = goal.Builder
	// RankBuilder adds ops and dependencies to one rank.
	RankBuilder = goal.RankBuilder
	// OpID identifies an op within one rank's program during construction.
	OpID = goal.OpID
)

// NewBuilder creates a schedule builder for nranks ranks.
func NewBuilder(nranks int) *Builder { return goal.NewBuilder(nranks) }

// GOAL op kinds.
const (
	OpCalc = goal.KindCalc
	OpSend = goal.KindSend
	OpRecv = goal.KindRecv
)

// AIParams returns the LogGOPS parameters measured for the paper's AI
// cluster (§5.2); the "lgs" backend's default.
func AIParams() LogGOPS { return backend.AIParams() }

// HPCParams returns the LogGOPS parameters measured on the paper's HPC
// test-bed (§5.3), with the 256 KB rendezvous threshold.
func HPCParams() LogGOPS { return backend.HPCParams() }

// DefaultNetParams mirrors the LGS AI overheads so the message-level and
// congestion-aware backends are calibrated identically out of the box.
func DefaultNetParams() NetParams { return backend.DefaultNetParams() }

// DefaultLinkSpec is the fabric link used when a config leaves Link zero.
func DefaultLinkSpec() LinkSpec { return topo.DefaultLinkSpec() }
