package sim

import (
	"fmt"
	"sort"
	"sync"

	"atlahs/internal/core"
)

// Env is the per-run context handed to a backend factory: everything a
// backend may need that only becomes known once the workload is resolved.
type Env struct {
	// Ranks is the schedule's rank count (= simulated nodes). Backends that
	// model a fabric size their topology to cover it.
	Ranks int
	// Seed is the Spec's top-level seed; configs with their own zero seed
	// inherit it.
	Seed uint64
}

// Definition describes one registered backend: its name (the Spec.Backend
// key), whether it may run on the sharded parallel engine, and the factory
// that builds a fresh instance per run.
type Definition struct {
	// Name identifies the backend ("lgs", "pkt", "fluid", ...).
	Name string
	// Parallel declares that the backend partitions its state per rank and
	// provides a cross-rank lookahead bound, so it can run on the parallel
	// engine. Backends with shared fabric state must leave it false; Run
	// rejects Workers > 1 for them instead of silently running serially.
	Parallel bool
	// New builds a single-run backend instance. cfg is Spec.Config, still
	// untyped: the factory owns the type check and must return a descriptive
	// error on a mismatch (see ConfigAs). cfg == nil selects defaults.
	// Third-party factories name the contract through this package's
	// aliases: func(cfg any, env sim.Env) (sim.Backend, error).
	New func(cfg any, env Env) (core.Backend, error)
	// NewConfig, when non-nil, returns a pointer to a fresh zero value of
	// the backend's config type — the hook the spec codec
	// (MarshalSpec/UnmarshalSpec) uses to resolve "config" wire payloads by
	// backend name. A backend that leaves it nil keeps working in-process
	// but rejects wire specs that carry a config for it. The config type
	// must round-trip through encoding/json for the codec to accept it.
	NewConfig func() any
}

var registry = struct {
	sync.RWMutex
	m map[string]Definition
}{m: map[string]Definition{}}

// Register adds a backend to the registry. The built-in backends ("lgs",
// "pkt", "fluid") self-register at init; third parties register theirs the
// same way. Registering an empty name, a nil factory, or a name that is
// already taken panics: those are programming errors at wiring time, not
// runtime conditions.
func Register(def Definition) {
	if def.Name == "" {
		panic("sim: Register with empty backend name")
	}
	if def.New == nil {
		panic(fmt.Sprintf("sim: Register(%q) with nil factory", def.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[def.Name]; dup {
		panic(fmt.Sprintf("sim: backend %q registered twice", def.Name))
	}
	registry.m[def.Name] = def
}

// Lookup returns the named backend's definition.
func Lookup(name string) (Definition, bool) {
	registry.RLock()
	defer registry.RUnlock()
	def, ok := registry.m[name]
	return def, ok
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ConfigAs coerces a Spec.Config value to the backend's config type T:
// nil and a nil *T select the zero value (defaults), T and *T pass
// through, and anything else is reported as a config-type mismatch.
// Backend factories — including third-party ones — are expected to route
// their cfg through this so mismatch errors read uniformly.
func ConfigAs[T any](backendName string, cfg any) (T, error) {
	var zero T
	switch v := cfg.(type) {
	case nil:
		return zero, nil
	case T:
		return v, nil
	case *T:
		if v == nil {
			return zero, nil
		}
		return *v, nil
	}
	return zero, fmt.Errorf("sim: backend %q wants a %T config, got %T", backendName, zero, cfg)
}
