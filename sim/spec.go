package sim

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strings"

	"atlahs/internal/goal"
	"atlahs/internal/trace/frontend"
	"atlahs/internal/workload/micro"
)

// Spec declares one simulation run. Exactly one workload source must be
// set; everything else has usable zero values. A zero Spec with a workload
// runs that schedule serially on the "lgs" backend with default parameters.
type Spec struct {
	// GoalPath names a GOAL schedule file, textual or binary (auto-detected
	// by the GOALB1 magic).
	GoalPath string
	// GoalBytes holds a serialised GOAL schedule, textual or binary
	// (auto-detected).
	GoalBytes []byte
	// Schedule is an in-memory GOAL schedule (e.g. from sim.NewBuilder or a
	// trace converter).
	Schedule *Schedule
	// Synthetic generates a microbenchmark traffic pattern.
	Synthetic *Synthetic
	// TracePath names a raw application trace file (nsys report, MPI
	// trace, SPC block-I/O trace, Chakra ET, or a GOAL file) to ingest
	// through the frontend registry. The format is auto-detected unless
	// Frontend names one explicitly.
	TracePath string
	// Trace holds a raw serialised application trace to ingest through the
	// frontend registry; see TracePath.
	Trace []byte
	// Frontend names the registered workload frontend converting TracePath
	// or Trace ("nsys", "mpi", "spc", "chakra", "goal", or a third-party
	// registration); "" auto-detects by content sniffing, then by file
	// extension.
	Frontend string
	// FrontendConfig is the frontend's typed configuration (e.g.
	// NsysConfig, MPIConfig, SPCConfig, ChakraConfig, or a third-party
	// frontend's own type). nil selects that frontend's defaults; a value
	// of the wrong type is an error, not a silent default.
	FrontendConfig any

	// Jobs composes several independently-sourced workloads onto one
	// fabric (the paper's multi-job scenarios, §3.2): each job's schedule
	// is resolved like a single-workload Spec, ranks are mapped onto
	// disjoint fabric nodes by the Placement policy, and the merged
	// schedule runs as one simulation. Mutually exclusive with the
	// single-workload sources above; per-job node sets come back in
	// Result.JobNodes.
	Jobs []JobSpec
	// Placement lays composed jobs out on the fabric: "packed" (default;
	// contiguous per-job node blocks) or "interleaved" (nodes dealt to
	// jobs round-robin). Only valid with Jobs.
	Placement string

	// Backend names the registered simulator to run on; "" means "lgs".
	Backend string
	// Config is the backend's typed configuration (e.g. LGSConfig,
	// PktConfig, FluidConfig, or a third-party backend's own type). nil
	// selects that backend's defaults; a value of the wrong type is an
	// error, not a silent default.
	Config any

	// Workers is the goroutine budget for the sharded parallel engine:
	// 0 and 1 run serially, > 1 runs parallel when the backend supports it
	// (a declared positive lookahead), and < 0 means GOMAXPROCS. Asking for
	// Workers > 1 on a backend that cannot shard (pkt, fluid) is an error.
	// Results never depend on Workers.
	Workers int
	// CalcScale multiplies every calc duration (hardware adaptation factor,
	// paper §7). 0 means 1.0.
	CalcScale float64
	// Seed is the top-level simulation seed, inherited by backend configs
	// that leave their own seed zero.
	Seed uint64

	// Observer, when non-nil, receives streaming run callbacks. With
	// Workers > 1 its op-level methods are called from multiple goroutines
	// and must be safe for concurrent use.
	Observer Observer
	// ProgressEvery emits Observer.Progress every N completed ops (0 = off).
	ProgressEvery int64

	// resolved pins the outcome of one workload resolution (ResolveSpec):
	// Run reuses it instead of re-reading files, re-converting traces and
	// re-composing jobs. Never set on hand-built or decoded specs.
	resolved *resolvedWorkload
}

// resolvedWorkload is the product of resolving a Spec's workload
// declaration once.
type resolvedWorkload struct {
	sched    *goal.Schedule
	jobNodes [][]int
}

// Synthetic declares a generated traffic pattern (internal/workload/micro).
type Synthetic struct {
	// Pattern is one of "ring", "alltoall", "incast", "permutation",
	// "uniform" or "bsp".
	Pattern string
	// Ranks is the number of participating ranks.
	Ranks int
	// Bytes is the per-message payload size.
	Bytes int64
	// Fanin is the incast fan-in (default Ranks-1).
	Fanin int
	// Msgs is the per-rank message count for "uniform" (default 100).
	Msgs int
	// Phases is the superstep count for "bsp" (default 4).
	Phases int
	// CalcNanos is the per-phase compute for "bsp" (default 1000).
	CalcNanos int64
	// Seed seeds "permutation" and "uniform"; 0 inherits Spec.Seed.
	Seed uint64
}

// SyntheticPatterns lists the generator names Synthetic understands.
func SyntheticPatterns() []string {
	return []string{"ring", "alltoall", "incast", "permutation", "uniform", "bsp"}
}

// validate checks the pattern declaration without generating anything.
func (sy *Synthetic) validate() error {
	if sy.Ranks <= 0 {
		return fmt.Errorf("sim: synthetic workload needs Ranks > 0, got %d", sy.Ranks)
	}
	switch sy.Pattern {
	case "ring", "alltoall", "incast", "permutation", "uniform", "bsp":
		return nil
	}
	return fmt.Errorf("sim: unknown synthetic pattern %q (want one of %s)",
		sy.Pattern, strings.Join(SyntheticPatterns(), ", "))
}

// generate builds the schedule for the pattern.
func (sy *Synthetic) generate(topSeed uint64) (*goal.Schedule, error) {
	if err := sy.validate(); err != nil {
		return nil, err
	}
	seed := sy.Seed
	if seed == 0 {
		seed = topSeed
	}
	if seed == 0 {
		seed = 1
	}
	switch sy.Pattern {
	case "ring":
		return micro.Ring(sy.Ranks, sy.Bytes), nil
	case "alltoall":
		return micro.AllToAll(sy.Ranks, sy.Bytes), nil
	case "incast":
		fanin := sy.Fanin
		if fanin <= 0 {
			fanin = sy.Ranks - 1
		}
		return micro.Incast(sy.Ranks, fanin, sy.Bytes), nil
	case "permutation":
		return micro.Permutation(sy.Ranks, sy.Bytes, seed), nil
	case "uniform":
		msgs := sy.Msgs
		if msgs <= 0 {
			msgs = 100
		}
		return micro.UniformRandom(sy.Ranks, msgs, sy.Bytes, seed), nil
	case "bsp":
		phases := sy.Phases
		if phases <= 0 {
			phases = 4
		}
		calc := sy.CalcNanos
		if calc <= 0 {
			calc = 1000
		}
		return micro.BulkSynchronous(sy.Ranks, phases, sy.Bytes, calc), nil
	}
	return nil, fmt.Errorf("sim: unknown synthetic pattern %q (want one of %s)",
		sy.Pattern, strings.Join(SyntheticPatterns(), ", "))
}

// JobSpec declares one composed job's workload for Spec.Jobs. Exactly one
// source must be set per job; the fields mirror Spec's single-workload
// sources.
type JobSpec struct {
	// GoalPath names a GOAL schedule file, textual or binary.
	GoalPath string
	// GoalBytes holds a serialised GOAL schedule.
	GoalBytes []byte
	// Schedule is an in-memory GOAL schedule.
	Schedule *Schedule
	// Synthetic generates a microbenchmark traffic pattern (its zero Seed
	// inherits Spec.Seed).
	Synthetic *Synthetic
	// TracePath names a raw application trace file ingested through the
	// frontend registry.
	TracePath string
	// Trace holds a raw serialised application trace.
	Trace []byte
	// Frontend names the workload frontend for TracePath/Trace; "" auto-
	// detects.
	Frontend string
	// FrontendConfig is the frontend's typed configuration; nil selects
	// defaults.
	FrontendConfig any
}

// sources counts the job's workload sources.
func (j *JobSpec) sources() int {
	n := 0
	if j.GoalPath != "" {
		n++
	}
	if len(j.GoalBytes) > 0 {
		n++
	}
	if j.Schedule != nil {
		n++
	}
	if j.Synthetic != nil {
		n++
	}
	if j.TracePath != "" {
		n++
	}
	if len(j.Trace) > 0 {
		n++
	}
	return n
}

// validate checks the job's workload declaration without touching the
// filesystem: exactly one source, frontend fields only alongside a trace
// source, a resolvable frontend name, and synthetic parameters in range.
func (j *JobSpec) validate() error {
	switch n := j.sources(); n {
	case 0:
		return fmt.Errorf("sim: no workload; set one of GoalPath, GoalBytes, Schedule, Synthetic, TracePath or Trace")
	case 1:
	default:
		return fmt.Errorf("sim: %d workload sources; set exactly one of GoalPath, GoalBytes, Schedule, Synthetic, TracePath or Trace", n)
	}
	if (j.Frontend != "" || j.FrontendConfig != nil) && j.TracePath == "" && len(j.Trace) == 0 {
		return fmt.Errorf("sim: Frontend/FrontendConfig are only meaningful with a TracePath or Trace workload")
	}
	if j.Frontend != "" {
		if _, ok := frontend.Lookup(j.Frontend); !ok {
			return fmt.Errorf("sim: unknown frontend %q (registered: %s)", j.Frontend, strings.Join(frontend.Names(), ", "))
		}
	}
	if j.Synthetic != nil {
		return j.Synthetic.validate()
	}
	return nil
}

// schedule resolves one job's workload source into a GOAL schedule.
func (j *JobSpec) schedule(topSeed uint64) (*goal.Schedule, error) {
	if err := j.validate(); err != nil {
		return nil, err
	}
	switch {
	case j.GoalPath != "":
		return LoadGOAL(j.GoalPath)
	case len(j.GoalBytes) > 0:
		return DecodeGOAL(j.GoalBytes)
	case j.Schedule != nil:
		return j.Schedule, nil
	case j.Synthetic != nil:
		return j.Synthetic.generate(topSeed)
	case j.TracePath != "":
		return ConvertTraceFile(j.TracePath, j.Frontend, j.FrontendConfig)
	default:
		return ConvertTrace(j.Trace, j.Frontend, j.FrontendConfig)
	}
}

// single gathers the Spec's top-level workload fields as one JobSpec, the
// unit both validation and resolution work on.
func (sp *Spec) single() JobSpec {
	return JobSpec{
		GoalPath: sp.GoalPath, GoalBytes: sp.GoalBytes,
		Schedule: sp.Schedule, Synthetic: sp.Synthetic,
		TracePath: sp.TracePath, Trace: sp.Trace,
		Frontend: sp.Frontend, FrontendConfig: sp.FrontendConfig,
	}
}

// Validate checks the spec's declarative shape without touching the
// filesystem and without running anything: exactly one workload source
// (or a Jobs composition), resolvable frontend, placement and backend
// names, synthetic parameters in range, and a worker request the backend
// can honour. Run validates through this same path, as do the spec codec
// (MarshalSpec/UnmarshalSpec) and the simulation service, so an invalid
// spec is rejected with identical error text at every entry point.
//
// What Validate cannot see are the workload's contents: a GoalPath that
// does not exist, a malformed trace, or a backend config the factory
// rejects still surface from Run.
func (sp *Spec) Validate() error {
	single := sp.single()
	if len(sp.Jobs) == 0 {
		if sp.Placement != "" {
			return fmt.Errorf("sim: Placement %q is only meaningful with Jobs", sp.Placement)
		}
		if err := single.validate(); err != nil {
			return err
		}
	} else {
		if n := single.sources(); n > 0 {
			return fmt.Errorf("sim: spec sets both Jobs and %d top-level workload source(s); use one or the other", n)
		}
		if _, err := placementPolicy(sp.Placement); err != nil {
			return err
		}
		for i := range sp.Jobs {
			if err := sp.Jobs[i].validate(); err != nil {
				return fmt.Errorf("sim: job %d: %w", i, err)
			}
		}
	}
	name := sp.backendName()
	def, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("sim: unknown backend %q (registered: %s)", name, strings.Join(Backends(), ", "))
	}
	if workers := resolveWorkers(sp.Workers); workers > 1 && !def.Parallel {
		return fmt.Errorf("sim: backend %q shares fabric state across ranks and cannot run on the parallel engine; drop the worker request (got %d)", name, workers)
	}
	return nil
}

// backendName resolves the spec's backend field ("" means "lgs").
func (sp *Spec) backendName() string {
	if sp.Backend == "" {
		return "lgs"
	}
	return sp.Backend
}

// resolve turns the Spec's workload declaration — a single source or a
// Jobs composition — into the schedule to simulate, plus each composed
// job's node set (nil for single workloads). The caller has validated.
// A spec pinned by ResolveSpec returns its resolution without touching
// the sources again.
func (sp *Spec) resolve() (*goal.Schedule, [][]int, error) {
	if sp.resolved != nil {
		return sp.resolved.sched, sp.resolved.jobNodes, nil
	}
	if len(sp.Jobs) == 0 {
		single := sp.single()
		s, err := single.schedule(sp.Seed)
		return s, nil, err
	}
	policy, err := placementPolicy(sp.Placement)
	if err != nil {
		return nil, nil, err
	}
	scheds := make([]*goal.Schedule, len(sp.Jobs))
	for i := range sp.Jobs {
		s, err := sp.Jobs[i].schedule(sp.Seed)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: job %d: %w", i, err)
		}
		scheds[i] = s
	}
	return goal.Compose(policy, scheds...)
}

// Placements lists the job placement policy names Spec.Placement accepts.
func Placements() []string { return []string{"packed", "interleaved"} }

// placementPolicy maps Spec.Placement to the composition policy.
func placementPolicy(name string) (goal.Placement, error) {
	switch name {
	case "", "packed":
		return goal.PlacePacked, nil
	case "interleaved":
		return goal.PlaceInterleaved, nil
	}
	return 0, fmt.Errorf("sim: unknown placement %q (want one of %s)", name, strings.Join(Placements(), ", "))
}

// LoadGOAL reads a GOAL schedule file, textual or binary (auto-detected by
// the GOALB1 magic).
func LoadGOAL(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if magic, err := br.Peek(len(goalMagic)); err == nil && string(magic) == goalMagic {
		return goal.ReadBinary(br)
	}
	return goal.ParseText(br)
}

// DecodeGOAL parses a serialised GOAL schedule, textual or binary
// (auto-detected).
func DecodeGOAL(b []byte) (*Schedule, error) {
	if bytes.HasPrefix(b, []byte(goalMagic)) {
		return goal.ReadBinary(bytes.NewReader(b))
	}
	return goal.ParseText(bytes.NewReader(b))
}

// goalMagic is the binary GOAL header (see internal/goal/binary.go).
const goalMagic = "GOALB1"
