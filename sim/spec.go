package sim

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strings"

	"atlahs/internal/goal"
	"atlahs/internal/workload/micro"
)

// Spec declares one simulation run. Exactly one workload source must be
// set; everything else has usable zero values. A zero Spec with a workload
// runs that schedule serially on the "lgs" backend with default parameters.
type Spec struct {
	// GoalPath names a GOAL schedule file, textual or binary (auto-detected
	// by the GOALB1 magic).
	GoalPath string
	// GoalBytes holds a serialised GOAL schedule, textual or binary
	// (auto-detected).
	GoalBytes []byte
	// Schedule is an in-memory GOAL schedule (e.g. from goal.NewBuilder or a
	// trace converter).
	Schedule *Schedule
	// Synthetic generates a microbenchmark traffic pattern.
	Synthetic *Synthetic

	// Backend names the registered simulator to run on; "" means "lgs".
	Backend string
	// Config is the backend's typed configuration (e.g. LGSConfig,
	// PktConfig, FluidConfig, or a third-party backend's own type). nil
	// selects that backend's defaults; a value of the wrong type is an
	// error, not a silent default.
	Config any

	// Workers is the goroutine budget for the sharded parallel engine:
	// 0 and 1 run serially, > 1 runs parallel when the backend supports it
	// (a declared positive lookahead), and < 0 means GOMAXPROCS. Asking for
	// Workers > 1 on a backend that cannot shard (pkt, fluid) is an error.
	// Results never depend on Workers.
	Workers int
	// CalcScale multiplies every calc duration (hardware adaptation factor,
	// paper §7). 0 means 1.0.
	CalcScale float64
	// Seed is the top-level simulation seed, inherited by backend configs
	// that leave their own seed zero.
	Seed uint64

	// Observer, when non-nil, receives streaming run callbacks. With
	// Workers > 1 its op-level methods are called from multiple goroutines
	// and must be safe for concurrent use.
	Observer Observer
	// ProgressEvery emits Observer.Progress every N completed ops (0 = off).
	ProgressEvery int64
}

// Synthetic declares a generated traffic pattern (internal/workload/micro).
type Synthetic struct {
	// Pattern is one of "ring", "alltoall", "incast", "permutation",
	// "uniform" or "bsp".
	Pattern string
	// Ranks is the number of participating ranks.
	Ranks int
	// Bytes is the per-message payload size.
	Bytes int64
	// Fanin is the incast fan-in (default Ranks-1).
	Fanin int
	// Msgs is the per-rank message count for "uniform" (default 100).
	Msgs int
	// Phases is the superstep count for "bsp" (default 4).
	Phases int
	// CalcNanos is the per-phase compute for "bsp" (default 1000).
	CalcNanos int64
	// Seed seeds "permutation" and "uniform"; 0 inherits Spec.Seed.
	Seed uint64
}

// SyntheticPatterns lists the generator names Synthetic understands.
func SyntheticPatterns() []string {
	return []string{"ring", "alltoall", "incast", "permutation", "uniform", "bsp"}
}

// generate builds the schedule for the pattern.
func (sy *Synthetic) generate(topSeed uint64) (*goal.Schedule, error) {
	if sy.Ranks <= 0 {
		return nil, fmt.Errorf("sim: synthetic workload needs Ranks > 0, got %d", sy.Ranks)
	}
	seed := sy.Seed
	if seed == 0 {
		seed = topSeed
	}
	if seed == 0 {
		seed = 1
	}
	switch sy.Pattern {
	case "ring":
		return micro.Ring(sy.Ranks, sy.Bytes), nil
	case "alltoall":
		return micro.AllToAll(sy.Ranks, sy.Bytes), nil
	case "incast":
		fanin := sy.Fanin
		if fanin <= 0 {
			fanin = sy.Ranks - 1
		}
		return micro.Incast(sy.Ranks, fanin, sy.Bytes), nil
	case "permutation":
		return micro.Permutation(sy.Ranks, sy.Bytes, seed), nil
	case "uniform":
		msgs := sy.Msgs
		if msgs <= 0 {
			msgs = 100
		}
		return micro.UniformRandom(sy.Ranks, msgs, sy.Bytes, seed), nil
	case "bsp":
		phases := sy.Phases
		if phases <= 0 {
			phases = 4
		}
		calc := sy.CalcNanos
		if calc <= 0 {
			calc = 1000
		}
		return micro.BulkSynchronous(sy.Ranks, phases, sy.Bytes, calc), nil
	}
	return nil, fmt.Errorf("sim: unknown synthetic pattern %q (want one of %s)",
		sy.Pattern, strings.Join(SyntheticPatterns(), ", "))
}

// schedule resolves the Spec's workload source into a GOAL schedule.
func (sp *Spec) schedule() (*goal.Schedule, error) {
	sources := 0
	if sp.GoalPath != "" {
		sources++
	}
	if len(sp.GoalBytes) > 0 {
		sources++
	}
	if sp.Schedule != nil {
		sources++
	}
	if sp.Synthetic != nil {
		sources++
	}
	switch sources {
	case 0:
		return nil, fmt.Errorf("sim: spec has no workload; set one of GoalPath, GoalBytes, Schedule or Synthetic")
	case 1:
	default:
		return nil, fmt.Errorf("sim: spec has %d workload sources; set exactly one of GoalPath, GoalBytes, Schedule or Synthetic", sources)
	}
	switch {
	case sp.GoalPath != "":
		return LoadGOAL(sp.GoalPath)
	case len(sp.GoalBytes) > 0:
		return DecodeGOAL(sp.GoalBytes)
	case sp.Schedule != nil:
		return sp.Schedule, nil
	default:
		return sp.Synthetic.generate(sp.Seed)
	}
}

// LoadGOAL reads a GOAL schedule file, textual or binary (auto-detected by
// the GOALB1 magic).
func LoadGOAL(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if magic, err := br.Peek(len(goalMagic)); err == nil && string(magic) == goalMagic {
		return goal.ReadBinary(br)
	}
	return goal.ParseText(br)
}

// DecodeGOAL parses a serialised GOAL schedule, textual or binary
// (auto-detected).
func DecodeGOAL(b []byte) (*Schedule, error) {
	if bytes.HasPrefix(b, []byte(goalMagic)) {
		return goal.ReadBinary(bytes.NewReader(b))
	}
	return goal.ParseText(bytes.NewReader(b))
}

// goalMagic is the binary GOAL header (see internal/goal/binary.go).
const goalMagic = "GOALB1"
