package sim

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"atlahs/internal/goal"
)

// Spec declares one simulation run. Exactly one workload source must be
// set; everything else has usable zero values. A zero Spec with a workload
// runs that schedule serially on the "lgs" backend with default parameters.
type Spec struct {
	// Workload declares the run's workload source (GoalPath, GoalBytes,
	// Schedule, Synthetic, TracePath, Trace, Model or ModelPath). The
	// fields are embedded, so they read and write as Spec's own.
	Workload

	// Jobs composes several independently-sourced workloads onto one
	// fabric (the paper's multi-job scenarios, §3.2): each job's schedule
	// is resolved like a single-workload Spec, ranks are mapped onto
	// disjoint fabric nodes by the Placement policy, and the merged
	// schedule runs as one simulation. Mutually exclusive with the
	// single-workload sources above; per-job node sets come back in
	// Result.JobNodes.
	Jobs []JobSpec
	// Placement lays composed jobs out on the fabric: "packed" (default;
	// contiguous per-job node blocks) or "interleaved" (nodes dealt to
	// jobs round-robin). Only valid with Jobs.
	Placement string

	// Backend names the registered simulator to run on; "" means "lgs".
	Backend string
	// Config is the backend's typed configuration (e.g. LGSConfig,
	// PktConfig, FluidConfig, or a third-party backend's own type). nil
	// selects that backend's defaults; a value of the wrong type is an
	// error, not a silent default.
	Config any

	// Workers is the goroutine budget for the sharded parallel engine:
	// 0 and 1 run serially, > 1 runs parallel when the backend supports it
	// (a declared positive lookahead), and < 0 means GOMAXPROCS. Asking for
	// Workers > 1 on a backend that cannot shard (pkt, fluid) is an error.
	// Results never depend on Workers.
	Workers int
	// CalcScale multiplies every calc duration (hardware adaptation factor,
	// paper §7). 0 means 1.0.
	CalcScale float64
	// Seed is the top-level simulation seed, inherited by backend configs
	// that leave their own seed zero.
	Seed uint64

	// Observer, when non-nil, receives streaming run callbacks. With
	// Workers > 1 its op-level methods are called from multiple goroutines
	// and must be safe for concurrent use.
	Observer Observer
	// ProgressEvery emits Observer.Progress every N completed ops (0 = off).
	ProgressEvery int64
	// Timeline, when non-nil, records the run's execution timeline into
	// the given recorder (see NewTimeline): one instant per op completion
	// and — on the parallel engine — one span per executed conservative
	// window. Like Observer it is a process-local hook: it never crosses
	// the wire and does not participate in fingerprints.
	Timeline *Timeline

	// resolved pins the outcome of one workload resolution (ResolveSpec):
	// Run reuses it instead of re-reading files, re-converting traces and
	// re-composing jobs. Never set on hand-built or decoded specs.
	resolved *resolvedWorkload
}

// resolvedWorkload is the product of resolving a Spec's workload
// declaration once.
type resolvedWorkload struct {
	sched    *goal.Schedule
	jobNodes [][]int
}

// Synthetic declares a generated traffic pattern, resolved by name
// through the generator registry (RegisterGenerator; the built-in
// patterns live in internal/workload/micro).
type Synthetic struct {
	// Pattern names a registered generator: "ring", "alltoall", "incast",
	// "permutation", "uniform", "bsp", or a third-party registration.
	Pattern string
	// Ranks is the number of participating ranks.
	Ranks int
	// Bytes is the per-message payload size.
	Bytes int64
	// Fanin is the incast fan-in (default Ranks-1).
	Fanin int
	// Msgs is the per-rank message count for "uniform" (default 100).
	Msgs int
	// Phases is the superstep count for "bsp" (default 4).
	Phases int
	// CalcNanos is the per-phase compute for "bsp" (default 1000).
	CalcNanos int64
	// Seed seeds "permutation" and "uniform"; 0 inherits Spec.Seed.
	Seed uint64
}

// validate checks the pattern declaration without generating anything.
func (sy *Synthetic) validate() error {
	if sy.Ranks <= 0 {
		return fmt.Errorf("sim: synthetic workload needs Ranks > 0, got %d", sy.Ranks)
	}
	_, err := patternGenerator(sy.Pattern)
	return err
}

// generate builds the schedule for the pattern through the registry.
func (sy *Synthetic) generate(topSeed uint64) (*goal.Schedule, error) {
	if err := sy.validate(); err != nil {
		return nil, err
	}
	def, err := patternGenerator(sy.Pattern)
	if err != nil {
		return nil, err
	}
	seed := sy.Seed
	if seed == 0 {
		seed = topSeed
	}
	if seed == 0 {
		seed = 1
	}
	return def.New(GenRequest{Synthetic: *sy, Ranks: sy.Ranks, Seed: seed})
}

// JobSpec declares one composed job's workload for Spec.Jobs. Exactly one
// source must be set per job; the embedded Workload carries the same
// fields as Spec's single-workload sources.
type JobSpec struct {
	Workload
}

// Validate checks the spec's declarative shape without touching the
// filesystem and without running anything: exactly one workload source
// (or a Jobs composition), resolvable frontend, placement and backend
// names, synthetic parameters in range, and a worker request the backend
// can honour. Run validates through this same path, as do the spec codec
// (MarshalSpec/UnmarshalSpec) and the simulation service, so an invalid
// spec is rejected with identical error text at every entry point.
//
// What Validate cannot see are the workload's contents: a GoalPath that
// does not exist, a malformed trace, or a backend config the factory
// rejects still surface from Run.
func (sp *Spec) Validate() error {
	if len(sp.Jobs) == 0 {
		if sp.Placement != "" {
			return fmt.Errorf("sim: Placement %q is only meaningful with Jobs", sp.Placement)
		}
		if err := sp.Workload.validate(); err != nil {
			return err
		}
	} else {
		if n := sp.Workload.sources(); n > 0 {
			return fmt.Errorf("sim: spec sets both Jobs and %d top-level workload source(s); use one or the other", n)
		}
		if _, err := placementPolicy(sp.Placement); err != nil {
			return err
		}
		for i := range sp.Jobs {
			if err := sp.Jobs[i].validate(); err != nil {
				return fmt.Errorf("sim: job %d: %w", i, err)
			}
		}
	}
	name := sp.backendName()
	def, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("sim: unknown backend %q (registered: %s)", name, strings.Join(Backends(), ", "))
	}
	if workers := resolveWorkers(sp.Workers); workers > 1 && !def.Parallel {
		return fmt.Errorf("sim: backend %q shares fabric state across ranks and cannot run on the parallel engine; drop the worker request (got %d)", name, workers)
	}
	return nil
}

// backendName resolves the spec's backend field ("" means "lgs").
func (sp *Spec) backendName() string {
	if sp.Backend == "" {
		return "lgs"
	}
	return sp.Backend
}

// resolve turns the Spec's workload declaration — a single source or a
// Jobs composition — into the schedule to simulate, plus each composed
// job's node set (nil for single workloads). The caller has validated.
// A spec pinned by ResolveSpec returns its resolution without touching
// the sources again.
func (sp *Spec) resolve() (*goal.Schedule, [][]int, error) {
	if sp.resolved != nil {
		return sp.resolved.sched, sp.resolved.jobNodes, nil
	}
	if len(sp.Jobs) == 0 {
		s, err := sp.Workload.schedule(sp.Seed)
		return s, nil, err
	}
	policy, err := placementPolicy(sp.Placement)
	if err != nil {
		return nil, nil, err
	}
	scheds := make([]*goal.Schedule, len(sp.Jobs))
	for i := range sp.Jobs {
		s, err := sp.Jobs[i].schedule(sp.Seed)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: job %d: %w", i, err)
		}
		scheds[i] = s
	}
	return goal.Compose(policy, scheds...)
}

// Placements lists the job placement policy names Spec.Placement accepts.
func Placements() []string { return []string{"packed", "interleaved"} }

// placementPolicy maps Spec.Placement to the composition policy.
func placementPolicy(name string) (goal.Placement, error) {
	switch name {
	case "", "packed":
		return goal.PlacePacked, nil
	case "interleaved":
		return goal.PlaceInterleaved, nil
	}
	return 0, fmt.Errorf("sim: unknown placement %q (want one of %s)", name, strings.Join(Placements(), ", "))
}

// LoadGOAL reads a GOAL schedule file, textual or binary (auto-detected by
// the GOALB1 magic). Binary files load whole and decode through the
// zero-copy goal.ParseBinary path.
func LoadGOAL(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if magic, err := br.Peek(len(goalMagic)); err == nil && string(magic) == goalMagic {
		b, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		return goal.ParseBinary(b)
	}
	return goal.ParseText(br)
}

// DecodeGOAL parses a serialised GOAL schedule, textual or binary
// (auto-detected). Binary input decodes zero-copy via goal.ParseBinary.
func DecodeGOAL(b []byte) (*Schedule, error) {
	if bytes.HasPrefix(b, []byte(goalMagic)) {
		return goal.ParseBinary(b)
	}
	return goal.ParseText(bytes.NewReader(b))
}

// goalMagic is the binary GOAL header (see internal/goal/binary.go).
const goalMagic = "GOALB1"
