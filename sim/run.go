package sim

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"

	"atlahs/internal/core"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/pktnet"
	"atlahs/internal/sched"
	"atlahs/internal/simtime"
	"atlahs/internal/telemetry"
	"atlahs/results"
)

// Result summarises a completed run: the simulated outcome (makespan,
// per-rank completion), the run's resolved metadata (backend, engine,
// workload accounting) and the executed-op tallies observed through the
// completion stream. Every field is deterministic except Wall.
type Result struct {
	// Runtime is the simulated completion time of the last op (the
	// makespan).
	Runtime Duration
	// RankEnd is each rank's last-op completion time.
	RankEnd []Time
	// Ops is the number of executed GOAL ops.
	Ops int64
	// Events is the number of engine events processed.
	Events uint64
	// Backend is the resolved backend name.
	Backend string
	// Ranks is the schedule's rank count (= simulated endpoints).
	Ranks int
	// Sched is the resolved workload's size accounting (ops, bytes on the
	// wire, dependency edges, ...).
	Sched ScheduleStats
	// Done tallies executed ops by kind, counted at completion time as the
	// Observer sees them. A successful run completes every scheduled op
	// (the scheduler errors on deadlock instead of returning partial
	// results), so Done always matches Sched's per-kind counts — for any
	// worker count.
	Done Tally
	// JobNodes maps each composed job (Spec.Jobs order) to the fabric
	// nodes its ranks landed on: JobNodes[j][r] is the node of job j's
	// rank r. nil for single-workload specs.
	JobNodes [][]int
	// Workers is the resolved worker count (1 = serial engine).
	Workers int
	// Parallel reports whether the sharded parallel engine ran the
	// simulation.
	Parallel bool
	// Net holds the fabric counters for backends that track them (pkt);
	// nil otherwise.
	Net *NetStats
	// Metrics is the run's atlahs.metrics/v1 snapshot: engine and
	// scheduler execution counters (windows, adaptive widenings, peak
	// queue depths, ...). Window counts are deterministic; the
	// execution-strategy counters describe how this process ran them and
	// follow the worker budget, like Workers and Wall.
	Metrics *results.MetricsSnapshot
	// Wall is the host time the simulation took.
	Wall time.Duration
}

// resolveWorkers maps the Spec.Workers convention onto an effective worker
// count: < 0 means GOMAXPROCS, 0 and 1 mean serial.
func resolveWorkers(workers int) int {
	if workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		return 1
	}
	return workers
}

// Tally counts executed GOAL ops by kind.
type Tally struct {
	Calcs, Sends, Recvs int64
}

// Total sums the tally across kinds.
func (t Tally) Total() int64 { return t.Calcs + t.Sends + t.Recvs }

// Run executes the spec: resolve the workload, build the backend through
// the registry, pick the serial or parallel engine from the backend's
// declared lookahead, simulate, and stream callbacks to the spec's
// Observer. Results are deterministic: they never depend on Workers or on
// wall-clock conditions.
//
// Cancellation is cooperative at op granularity: when ctx is cancellable,
// the run stops near the next op completion after ctx ends and Run returns
// ctx's error.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sch, jobNodes, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	name := spec.backendName()
	def, _ := Lookup(name)
	be, err := def.New(spec.Config, Env{Ranks: sch.NumRanks(), Seed: spec.Seed})
	if err != nil {
		return nil, err
	}

	workers := resolveWorkers(spec.Workers)
	lookahead := core.LookaheadOf(be)
	parallel := workers > 1 && lookahead > 0 && sch.NumRanks() > 1
	var eng engine.Sim
	if parallel {
		eng = engine.NewParallel(sch.NumRanks(), workers, lookahead)
	} else {
		workers = 1
		eng = engine.New()
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.Timeline != nil {
		if pe, ok := eng.(*engine.ParEngine); ok {
			pe.SetTracer(spec.Timeline)
		}
	}
	st := sch.ComputeStats()
	runBE := &observedBackend{
		inner:   be,
		sch:     sch,
		obs:     spec.Observer,
		tl:      spec.Timeline,
		every:   spec.ProgressEvery,
		total:   st.Ops,
		ctx:     ctx,
		stop:    eng.(interface{ Stop() }),
		track:   spec.Observer != nil || ctx.Done() != nil,
		perRank: make([]paddedTally, sch.NumRanks()),
	}
	if spec.Observer != nil {
		spec.Observer.RunStarted(RunInfo{
			Backend:  name,
			Stats:    st,
			Workers:  workers,
			Parallel: parallel,
		})
	}

	start := time.Now()
	res, err := sched.Run(eng, sch, runBE, sched.Options{CalcScale: spec.CalcScale})
	wall := time.Since(start)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}

	out := &Result{
		Runtime:  res.Runtime,
		RankEnd:  res.RankEnd,
		Ops:      res.Ops,
		Events:   res.Events,
		Backend:  name,
		Ranks:    sch.NumRanks(),
		Sched:    st,
		Done:     runBE.tally(),
		JobNodes: jobNodes,
		Workers:  workers,
		Parallel: parallel,
		Wall:     wall,
		Metrics:  runMetrics(eng, res),
	}
	if sp, ok := be.(interface{ NetStats() pktnet.Stats }); ok {
		ns := sp.NetStats()
		out.Net = &ns
		if spec.Observer != nil {
			spec.Observer.NetStats(ns)
		}
	}
	return out, nil
}

// observedBackend decorates every run's backend to intercept the
// completion callback for observer streaming, per-kind op tallies (the
// Result.Done accounting) and cooperative cancellation. It adds no engine
// events and leaves the completion delivery order untouched, so the
// decoration never changes simulated results.
//
// The tally is counted rather than copied from the schedule on purpose:
// it is the run's evidence that every op completed exactly once, so an
// engine bug that dropped or double-delivered completions would surface
// as a Done/Sched mismatch in the result tests. Counters are per rank
// and non-atomic — completions run on the op's rank lane (the scheduler
// relies on the same guarantee for its own bookkeeping), and the lanes
// join before Run reads the sums — so the hot path pays one plain
// increment, with no cross-worker cache-line contention.
type observedBackend struct {
	inner core.Backend
	sch   *goal.Schedule
	obs   Observer
	tl    *telemetry.Timeline
	every int64
	total int64
	ctx   context.Context
	stop  interface{ Stop() }
	// track gates the global completion counter: it only feeds observer
	// progress events and ctx polling, so untracked runs skip the shared
	// atomic entirely.
	track   bool
	done    atomic.Int64
	perRank []paddedTally
}

// paddedTally pads each rank's counters to a cache line so neighbouring
// ranks on different worker lanes do not false-share.
type paddedTally struct {
	Tally
	_ [64 - unsafe.Sizeof(Tally{})%64]byte
}

// tally sums the per-rank completion counters; callers may only invoke it
// after the run has joined its lanes.
func (o *observedBackend) tally() Tally {
	var t Tally
	for i := range o.perRank {
		t.Calcs += o.perRank[i].Calcs
		t.Sends += o.perRank[i].Sends
		t.Recvs += o.perRank[i].Recvs
	}
	return t
}

// ctxCheckMask throttles ctx polling to every 1024 op completions.
const ctxCheckMask = 1<<10 - 1

// Name implements core.Backend.
func (o *observedBackend) Name() string { return o.inner.Name() }

// Setup implements core.Backend, wrapping the scheduler's completion
// callback.
func (o *observedBackend) Setup(nranks int, eng engine.Sim, over core.CompletionFunc) error {
	return o.inner.Setup(nranks, eng, func(h core.Handle, at simtime.Time) {
		kind := o.sch.Ranks[h.Rank()].Ops[h.Op()].Kind
		t := &o.perRank[h.Rank()]
		switch kind {
		case goal.KindCalc:
			t.Calcs++
		case goal.KindSend:
			t.Sends++
		case goal.KindRecv:
			t.Recvs++
		}
		if o.tl != nil {
			o.tl.Op(h.Rank(), kind.String(), at)
		}
		if o.track {
			n := o.done.Add(1)
			if o.obs != nil {
				o.obs.OpCompleted(OpEvent{
					Rank: h.Rank(),
					Op:   h.Op(),
					Kind: kind,
					At:   at,
				})
				if o.every > 0 && n%o.every == 0 {
					o.obs.Progress(ProgressEvent{Done: n, Total: o.total, At: at})
				}
			}
			if o.ctx.Done() != nil && n&ctxCheckMask == 0 && o.ctx.Err() != nil {
				o.stop.Stop()
			}
		}
		over(h, at)
	})
}

// Send implements core.Backend.
func (o *observedBackend) Send(ev core.SendEvent) { o.inner.Send(ev) }

// Recv implements core.Backend.
func (o *observedBackend) Recv(ev core.RecvEvent) { o.inner.Recv(ev) }

// Calc implements core.Backend.
func (o *observedBackend) Calc(ev core.CalcEvent) { o.inner.Calc(ev) }
