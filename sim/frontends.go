package sim

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"atlahs/internal/collective"
	"atlahs/internal/goal"
	"atlahs/internal/storage/directdrive"
	"atlahs/internal/trace/chakra"
	"atlahs/internal/trace/frontend"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/trace/schedgen"
)

// Frontend describes one registered workload frontend: a trace format
// (name, content sniffer, extension fallback) and its streaming
// trace-to-GOAL conversion. The built-in frontends self-register at init:
//
//	goal    GOAL schedules themselves, textual or binary (pass-through)
//	nsys    nsys-like GPU reports via the 4-stage NCCL pipeline (§3.1.2)
//	mpi     liballprof-style MPI traces via Schedgen (§3.1.1)
//	spc     SPC block-I/O traces via the Direct Drive model (§3.1.3)
//	chakra  Chakra-like execution traces (the AstraSim input format)
//
// Third-party ingestion registers the same way; a frontend's Convert may
// name the contract through this package's aliases: func(r io.Reader,
// cfg any) (*sim.Schedule, error).
type Frontend = frontend.Definition

// Per-frontend configuration types, passed as Spec.FrontendConfig (or
// JobSpec.FrontendConfig). nil selects each frontend's defaults; the
// "goal" frontend takes no config.
type (
	// NsysConfig tunes the "nsys" frontend: the 4-stage NCCL GOAL
	// pipeline (GPUs per node, NCCL channels/protocol, intra-node cost).
	NsysConfig = ncclgoal.Config
	// MPIConfig tunes the "mpi" frontend: Schedgen's collective
	// substitution (per-kind algorithms), compute-gap inference and
	// reduction cost.
	MPIConfig = schedgen.Options
	// SPCConfig tunes the "spc" frontend: the Direct Drive cluster shape
	// (hosts, CCS, BSS, replicas) and its service costs.
	SPCConfig = directdrive.Config
	// ChakraConfig tunes the "chakra" frontend: the world group name,
	// subgroup memberships and reduction cost.
	ChakraConfig = chakra.ConvertConfig
)

// Collective algorithm aliases, so MPIConfig.Algos is expressible without
// importing internal packages.
type (
	// CollectiveKind identifies a collective operation.
	CollectiveKind = collective.Kind
	// CollectiveAlgo selects a decomposition algorithm for a collective.
	CollectiveAlgo = collective.Algo
)

// Collective kinds (for MPIConfig.Algos keys).
const (
	CollAllreduce     = collective.Allreduce
	CollBcast         = collective.Bcast
	CollAllgather     = collective.Allgather
	CollReduceScatter = collective.ReduceScatter
	CollAlltoall      = collective.Alltoall
	CollBarrier       = collective.Barrier
	CollReduce        = collective.Reduce
	CollGather        = collective.Gather
	CollScatter       = collective.Scatter
)

// Collective algorithms (for MPIConfig.Algos values).
const (
	AlgoAuto        = collective.Auto
	AlgoRing        = collective.Ring
	AlgoRecDoubling = collective.RecDoubling
	AlgoBinomial    = collective.Binomial
)

// RegisterFrontend adds a workload frontend to the registry. The built-in
// frontends self-register at init; third parties register theirs the same
// way. Registering an empty name, a nil converter, or a name that is
// already taken panics: those are programming errors at wiring time.
func RegisterFrontend(def Frontend) { frontend.Register(def) }

// LookupFrontend returns the named frontend's definition.
func LookupFrontend(name string) (Frontend, bool) { return frontend.Lookup(name) }

// Frontends lists the registered frontend names, sorted.
func Frontends() []string { return frontend.Names() }

// FrontendConfigAs coerces a FrontendConfig value to the frontend's own
// config type T — the helper third-party converters use so config-type
// mismatch errors read uniformly. nil and a nil *T select the zero value.
func FrontendConfigAs[T any](frontendName string, cfg any) (T, error) {
	return frontend.ConfigAs[T](frontendName, cfg)
}

// openTrace opens a trace file and resolves its frontend (named, or
// detected from the sniffed prefix / extension), leaving the returned
// reader positioned at the start of the trace. The caller closes f.
func openTrace(path, frontendName string) (Frontend, *bufio.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return Frontend{}, nil, nil, err
	}
	br := bufio.NewReaderSize(f, frontend.SniffLen)
	prefix, err := br.Peek(frontend.SniffLen)
	if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
		f.Close()
		return Frontend{}, nil, nil, fmt.Errorf("sim: reading %s: %w", path, err)
	}
	def, err := resolveFrontend(frontendName, prefix, path)
	if err != nil {
		f.Close()
		return Frontend{}, nil, nil, err
	}
	return def, br, f, nil
}

// ConvertTraceFile converts a trace file into a GOAL schedule through the
// frontend registry. frontendName == "" auto-detects the format (content
// sniffing on the file's first bytes, extension fallback); cfg is the
// frontend's typed configuration (nil = defaults). Conversion streams
// from the file.
func ConvertTraceFile(path, frontendName string, cfg any) (*Schedule, error) {
	def, br, f, err := openTrace(path, frontendName)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := def.Convert(br, cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: converting %s via %q frontend: %w", path, def.Name, err)
	}
	return s, nil
}

// ConvertTraceFileVia converts like ConvertTraceFile, but resolves the
// frontend first and then looks its configuration up in configs by name
// (a missing entry selects that frontend's defaults). It returns the
// resolved name alongside the schedule, and reads the input exactly once
// — callers that would otherwise detect-then-convert in two passes (the
// schedgen CLI, non-seekable inputs) use this.
func ConvertTraceFileVia(path, frontendName string, configs map[string]any) (*Schedule, string, error) {
	def, br, f, err := openTrace(path, frontendName)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	s, err := def.Convert(br, configs[def.Name])
	if err != nil {
		return nil, def.Name, fmt.Errorf("sim: converting %s via %q frontend: %w", path, def.Name, err)
	}
	return s, def.Name, nil
}

// DetectFrontend reports which registered frontend owns the trace file at
// path, by content sniffing on its first bytes with the file's extension
// as fallback — detection only, no conversion.
func DetectFrontend(path string) (Frontend, error) {
	def, _, f, err := openTrace(path, "")
	if err != nil {
		return Frontend{}, err
	}
	f.Close()
	return def, nil
}

// ConvertTrace converts an in-memory serialised trace into a GOAL
// schedule through the frontend registry; see ConvertTraceFile. Frontends
// with a zero-copy byte decoder (Frontend.ConvertBytes — the "goal"
// frontend's binary path) convert without the reader indirection.
func ConvertTrace(b []byte, frontendName string, cfg any) (*Schedule, error) {
	prefix := b
	if len(prefix) > frontend.SniffLen {
		prefix = prefix[:frontend.SniffLen]
	}
	def, err := resolveFrontend(frontendName, prefix, "")
	if err != nil {
		return nil, err
	}
	var s *Schedule
	if def.ConvertBytes != nil {
		s, err = def.ConvertBytes(b, cfg)
	} else {
		s, err = def.Convert(bytes.NewReader(b), cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: converting trace via %q frontend: %w", def.Name, err)
	}
	return s, nil
}

// resolveFrontend picks the frontend: the named one, or format detection.
func resolveFrontend(name string, prefix []byte, path string) (Frontend, error) {
	if name != "" {
		def, ok := frontend.Lookup(name)
		if !ok {
			return Frontend{}, fmt.Errorf("sim: unknown frontend %q (registered: %s)", name, strings.Join(frontend.Names(), ", "))
		}
		return def, nil
	}
	def, err := frontend.Detect(prefix, path)
	if err != nil {
		return Frontend{}, fmt.Errorf("sim: %w", err)
	}
	return def, nil
}

// WriteGOALText prints a schedule in the textual GOAL format (paper Fig 3).
func WriteGOALText(w io.Writer, s *Schedule) error { return goal.WriteText(w, s) }

// WriteGOALBinary encodes a schedule in the compact binary GOAL format.
func WriteGOALBinary(w io.Writer, s *Schedule) error { return goal.WriteBinary(w, s) }
