package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"

	"atlahs/internal/goal"
	"atlahs/internal/trace/frontend"
)

// SpecSchema identifies the wire layout MarshalSpec writes and
// UnmarshalSpec reads. Like atlahs.results/v1 it is append-only: released
// fields keep their names and types; new optional fields may be added.
const SpecSchema = "atlahs.spec/v1"

// wireSpec is the wire form of a Spec. Workload payloads travel inline
// (byte fields are standard-base64 JSON strings; "schedule" carries the
// canonical binary GOAL encoding), and the untyped Config/FrontendConfig
// fields travel as raw JSON objects whose concrete type is resolved by
// backend/frontend name through the two registries at decode time.
type wireSpec struct {
	Schema         string          `json:"schema"`
	GoalPath       string          `json:"goal_path,omitempty"`
	GoalBytes      []byte          `json:"goal_bytes,omitempty"`
	Schedule       []byte          `json:"schedule,omitempty"`
	Synthetic      *wireSynthetic  `json:"synthetic,omitempty"`
	TracePath      string          `json:"trace_path,omitempty"`
	Trace          []byte          `json:"trace,omitempty"`
	Frontend       string          `json:"frontend,omitempty"`
	FrontendConfig json.RawMessage `json:"frontend_config,omitempty"`
	Model          *wireModelGen   `json:"model,omitempty"`
	ModelPath      string          `json:"model_path,omitempty"`
	Jobs           []wireJob       `json:"jobs,omitempty"`
	Placement      string          `json:"placement,omitempty"`
	Backend        string          `json:"backend,omitempty"`
	Config         json.RawMessage `json:"config,omitempty"`
	Workers        int             `json:"workers,omitempty"`
	CalcScale      float64         `json:"calc_scale,omitempty"`
	Seed           uint64          `json:"seed,omitempty"`
	ProgressEvery  int64           `json:"progress_every,omitempty"`
}

// wireJob mirrors one Workload declaration: the same fields as the top
// level.
type wireJob struct {
	GoalPath       string          `json:"goal_path,omitempty"`
	GoalBytes      []byte          `json:"goal_bytes,omitempty"`
	Schedule       []byte          `json:"schedule,omitempty"`
	Synthetic      *wireSynthetic  `json:"synthetic,omitempty"`
	TracePath      string          `json:"trace_path,omitempty"`
	Trace          []byte          `json:"trace,omitempty"`
	Frontend       string          `json:"frontend,omitempty"`
	FrontendConfig json.RawMessage `json:"frontend_config,omitempty"`
	Model          *wireModelGen   `json:"model,omitempty"`
	ModelPath      string          `json:"model_path,omitempty"`
}

// wireModelGen mirrors ModelGen; the model document travels inline as a
// standard-base64 JSON string.
type wireModelGen struct {
	Ranks int    `json:"ranks,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	Doc   []byte `json:"doc,omitempty"`
}

// wireSynthetic mirrors Synthetic with stable snake_case keys.
type wireSynthetic struct {
	Pattern   string `json:"pattern"`
	Ranks     int    `json:"ranks"`
	Bytes     int64  `json:"bytes,omitempty"`
	Fanin     int    `json:"fanin,omitempty"`
	Msgs      int    `json:"msgs,omitempty"`
	Phases    int    `json:"phases,omitempty"`
	CalcNanos int64  `json:"calc_nanos,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
}

// MarshalSpec encodes a validated Spec as one indented atlahs.spec/v1 JSON
// object followed by a newline — the submission format of the simulation
// service (atlahsd) and of `atlahs -spec`. The encoding is canonical:
// marshalling the same spec always yields identical bytes.
//
// Everything in a Spec crosses the wire except the two process-local
// hooks: a non-nil Observer is an error (observers attach on the serving
// side), and configs carrying process-local pointers (an explicit
// *Topology fabric, an attached *Sample sink) are rejected — declare the
// fabric through the config's scalar fields instead. Config and
// FrontendConfig payloads are resolved by name through the backend and
// frontend registries, so a FrontendConfig needs Spec.Frontend named
// explicitly (content sniffing cannot resolve a config type), and a
// backend or frontend whose Definition declares no NewConfig factory
// cannot carry a config payload. In-memory Schedules travel as the
// canonical binary GOAL encoding.
func MarshalSpec(sp Spec) ([]byte, error) {
	if sp.Observer != nil {
		return nil, fmt.Errorf("sim: a spec with a streaming Observer cannot cross the wire; attach observers on the serving side")
	}
	if sp.Timeline != nil {
		return nil, fmt.Errorf("sim: a spec with a Timeline recorder cannot cross the wire; attach recorders on the serving side")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	wj, err := encodeWorkload(&sp.Workload)
	if err != nil {
		return nil, err
	}
	ws := wireSpec{
		Schema:         SpecSchema,
		GoalPath:       wj.GoalPath,
		GoalBytes:      wj.GoalBytes,
		Schedule:       wj.Schedule,
		Synthetic:      wj.Synthetic,
		TracePath:      wj.TracePath,
		Trace:          wj.Trace,
		Frontend:       wj.Frontend,
		FrontendConfig: wj.FrontendConfig,
		Model:          wj.Model,
		ModelPath:      wj.ModelPath,
		Placement:      sp.Placement,
		Backend:        sp.Backend,
		Workers:        sp.Workers,
		CalcScale:      sp.CalcScale,
		Seed:           sp.Seed,
		ProgressEvery:  sp.ProgressEvery,
	}
	for i := range sp.Jobs {
		j, err := encodeWorkload(&sp.Jobs[i].Workload)
		if err != nil {
			return nil, fmt.Errorf("sim: job %d: %w", i, err)
		}
		ws.Jobs = append(ws.Jobs, *j)
	}
	name := sp.backendName()
	def, _ := Lookup(name)
	if ws.Config, err = encodePayload("backend", name, def.NewConfig, sp.Config); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(ws, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sim: encoding spec: %w", err)
	}
	return append(b, '\n'), nil
}

// encodeWorkload renders one workload declaration (the top-level fields
// or one composed job's) into its wire form.
func encodeWorkload(j *Workload) (*wireJob, error) {
	w := &wireJob{
		GoalPath:  j.GoalPath,
		GoalBytes: j.GoalBytes,
		TracePath: j.TracePath,
		Trace:     j.Trace,
		Frontend:  j.Frontend,
		ModelPath: j.ModelPath,
	}
	if j.Model != nil {
		w.Model = &wireModelGen{Ranks: j.Model.Ranks, Seed: j.Model.Seed, Doc: j.Model.Doc}
	}
	if j.Schedule != nil {
		var buf bytes.Buffer
		if err := goal.WriteBinary(&buf, j.Schedule); err != nil {
			return nil, fmt.Errorf("sim: encoding in-memory schedule: %w", err)
		}
		w.Schedule = buf.Bytes()
	}
	if j.Synthetic != nil {
		sy := j.Synthetic
		w.Synthetic = &wireSynthetic{
			Pattern: sy.Pattern, Ranks: sy.Ranks, Bytes: sy.Bytes,
			Fanin: sy.Fanin, Msgs: sy.Msgs, Phases: sy.Phases,
			CalcNanos: sy.CalcNanos, Seed: sy.Seed,
		}
	}
	if j.FrontendConfig != nil {
		if j.Frontend == "" {
			return nil, fmt.Errorf("sim: a wire spec needs Frontend named explicitly to carry a FrontendConfig; content sniffing cannot resolve the config type")
		}
		def, _ := frontend.Lookup(j.Frontend)
		raw, err := encodePayload("frontend", j.Frontend, def.NewConfig, j.FrontendConfig)
		if err != nil {
			return nil, err
		}
		w.FrontendConfig = raw
	}
	return w, nil
}

// UnmarshalSpec decodes one atlahs.spec/v1 JSON object into a validated
// Spec. Unknown schema versions, unknown top-level or config fields,
// trailing data, and any spec Spec.Validate rejects are errors, so every
// spec this returns is runnable as far as its declaration goes. The
// "schedule" payload must be binary GOAL (it is parsed eagerly into
// Spec.Schedule); GoalBytes/Trace payloads stay raw and are parsed at run
// time like any other Spec.
func UnmarshalSpec(b []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var ws wireSpec
	if err := dec.Decode(&ws); err != nil {
		return Spec{}, fmt.Errorf("sim: decoding spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("sim: trailing data after the spec object")
	}
	if ws.Schema != SpecSchema {
		return Spec{}, fmt.Errorf("sim: unknown spec schema %q (want %q)", ws.Schema, SpecSchema)
	}
	single, err := decodeWorkload(&wireJob{
		GoalPath:  ws.GoalPath,
		GoalBytes: ws.GoalBytes,
		Schedule:  ws.Schedule,
		Synthetic: ws.Synthetic,
		TracePath: ws.TracePath,
		Trace:     ws.Trace,
		Frontend:  ws.Frontend, FrontendConfig: ws.FrontendConfig,
		Model: ws.Model, ModelPath: ws.ModelPath,
	})
	if err != nil {
		return Spec{}, err
	}
	sp := Spec{
		Workload:      *single,
		Placement:     ws.Placement,
		Backend:       ws.Backend,
		Workers:       ws.Workers,
		CalcScale:     ws.CalcScale,
		Seed:          ws.Seed,
		ProgressEvery: ws.ProgressEvery,
	}
	for i := range ws.Jobs {
		j, err := decodeWorkload(&ws.Jobs[i])
		if err != nil {
			return Spec{}, fmt.Errorf("sim: job %d: %w", i, err)
		}
		sp.Jobs = append(sp.Jobs, JobSpec{Workload: *j})
	}
	name := sp.backendName()
	def, ok := Lookup(name)
	if !ok {
		return Spec{}, fmt.Errorf("sim: unknown backend %q (registered: %s)", name, strings.Join(Backends(), ", "))
	}
	if sp.Config, err = decodePayload("backend", name, def.NewConfig, ws.Config); err != nil {
		return Spec{}, err
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// decodeWorkload resolves one wire workload declaration back into a
// Workload.
func decodeWorkload(w *wireJob) (*Workload, error) {
	j := &Workload{
		GoalPath:  w.GoalPath,
		GoalBytes: nilIfEmpty(w.GoalBytes),
		TracePath: w.TracePath,
		Trace:     nilIfEmpty(w.Trace),
		Frontend:  w.Frontend,
		ModelPath: w.ModelPath,
	}
	if w.Model != nil {
		j.Model = &ModelGen{Ranks: w.Model.Ranks, Seed: w.Model.Seed, Doc: nilIfEmpty(w.Model.Doc)}
	}
	if len(w.Schedule) > 0 {
		if !bytes.HasPrefix(w.Schedule, []byte(goalMagic)) {
			return nil, fmt.Errorf("sim: wire schedule payload must be binary GOAL (%s...); ship textual GOAL via goal_bytes", goalMagic)
		}
		s, err := goal.ParseBinary(w.Schedule)
		if err != nil {
			return nil, fmt.Errorf("sim: decoding wire schedule: %w", err)
		}
		j.Schedule = s
	}
	if w.Synthetic != nil {
		sy := w.Synthetic
		j.Synthetic = &Synthetic{
			Pattern: sy.Pattern, Ranks: sy.Ranks, Bytes: sy.Bytes,
			Fanin: sy.Fanin, Msgs: sy.Msgs, Phases: sy.Phases,
			CalcNanos: sy.CalcNanos, Seed: sy.Seed,
		}
	}
	if payloadPresent(w.FrontendConfig) {
		if w.Frontend == "" {
			return nil, fmt.Errorf("sim: a wire spec needs Frontend named explicitly to carry a FrontendConfig; content sniffing cannot resolve the config type")
		}
		def, ok := frontend.Lookup(w.Frontend)
		if !ok {
			return nil, fmt.Errorf("sim: unknown frontend %q (registered: %s)", w.Frontend, strings.Join(frontend.Names(), ", "))
		}
		cfg, err := decodePayload("frontend", w.Frontend, def.NewConfig, w.FrontendConfig)
		if err != nil {
			return nil, err
		}
		j.FrontendConfig = cfg
	}
	return j, nil
}

// encodePayload renders one untyped config value as its wire JSON, after
// checking it against the registered config type and its wire-ability.
func encodePayload(kind, name string, proto func() any, cfg any) (json.RawMessage, error) {
	if cfg == nil {
		return nil, nil
	}
	if proto == nil {
		return nil, fmt.Errorf("sim: %s %q declares no wire config type; a %T config cannot cross the wire", kind, name, cfg)
	}
	want := reflect.TypeOf(proto()).Elem()
	rv := reflect.ValueOf(cfg)
	switch {
	case rv.Type() == want:
	case rv.Kind() == reflect.Pointer && rv.Type().Elem() == want:
		if rv.IsNil() {
			return nil, nil
		}
		rv = rv.Elem()
	default:
		return nil, fmt.Errorf("sim: %s %q wants a %s config, got %T", kind, name, want, cfg)
	}
	val := rv.Interface()
	if err := checkWireable(kind, name, val); err != nil {
		return nil, err
	}
	b, err := json.Marshal(val)
	if err != nil {
		return nil, fmt.Errorf("sim: encoding %s %q config: %w", kind, name, err)
	}
	return b, nil
}

// decodePayload parses one wire config payload into the registered config
// type, rejecting unknown fields and process-local values.
func decodePayload(kind, name string, proto func() any, raw json.RawMessage) (any, error) {
	if !payloadPresent(raw) {
		return nil, nil
	}
	if proto == nil {
		return nil, fmt.Errorf("sim: %s %q declares no wire config type; drop the config payload", kind, name)
	}
	p := proto()
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("sim: decoding %s %q config: %w", kind, name, err)
	}
	cfg := reflect.ValueOf(p).Elem().Interface()
	if err := checkWireable(kind, name, cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

// checkWireable rejects config values that only make sense inside one
// process: pointer fields like an explicit fabric graph or a metric sink
// would decode into broken shells on the other end, so they fail loudly
// in both codec directions instead.
func checkWireable(kind, name string, cfg any) error {
	switch c := cfg.(type) {
	case PktConfig:
		if c.Topo != nil {
			return fmt.Errorf("sim: %s %q config: an explicit *Topology is process-local and cannot cross the wire; declare the fabric via HostsPerToR/Oversub/Cores/Link", kind, name)
		}
		if c.MCT != nil {
			return fmt.Errorf("sim: %s %q config: an attached *Sample sink is process-local and cannot cross the wire", kind, name)
		}
	case FluidConfig:
		if c.Topo != nil {
			return fmt.Errorf("sim: %s %q config: an explicit *Topology is process-local and cannot cross the wire; declare the fabric via HostsPerToR/Oversub/Cores/Link", kind, name)
		}
	}
	return nil
}

// payloadPresent reports whether a raw config payload carries a value
// (absent fields and JSON null both mean "defaults").
func payloadPresent(raw json.RawMessage) bool {
	return len(raw) > 0 && !bytes.Equal(raw, []byte("null"))
}

// nilIfEmpty canonicalises empty byte payloads to nil so decoded specs
// re-encode identically (omitempty drops both).
func nilIfEmpty(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return b
}

// canonSpec is the result-affecting projection of a Spec that Fingerprint
// hashes: the backend, its config, the calc scale and the seed. Execution
// knobs that provably never change a Result — Workers, ProgressEvery,
// Observer — are excluded, and the workload is represented by its resolved
// digest instead of by how it was sourced.
type canonSpec struct {
	Schema    string          `json:"schema"`
	Backend   string          `json:"backend"`
	Config    json.RawMessage `json:"config,omitempty"`
	CalcScale float64         `json:"calc_scale"`
	Seed      uint64          `json:"seed"`
}

// SelfContained reports whether the spec's workloads are fully inline —
// no GoalPath, TracePath or ModelPath anywhere, including composed jobs —
// so its
// wire encoding alone determines the simulation. For self-contained
// specs, equal canonical encodings imply equal Fingerprints, which lets
// a cache answer re-submissions without resolving the workload at all;
// file-backed specs lack that property (the file's contents can change
// under the same path) and must be re-digested every time.
func (sp *Spec) SelfContained() bool {
	if !sp.Workload.selfContained() {
		return false
	}
	for i := range sp.Jobs {
		if !sp.Jobs[i].Workload.selfContained() {
			return false
		}
	}
	return true
}

// selfContained reports whether the workload declaration references no
// files.
func (w *Workload) selfContained() bool {
	return w.GoalPath == "" && w.TracePath == "" && w.ModelPath == ""
}

// Fingerprint returns a Spec's content address: the hex SHA-256 of its
// canonical result-affecting encoding plus the resolved workload digest.
// Two specs with equal fingerprints produce bit-identical Results (and so
// bit-identical exported artifacts) — the determinism guarantee of Run
// extended to an address — which is what makes the simulation service's
// content-addressed run cache sound.
//
// The workload digest is computed over the fully resolved schedule (files
// read, traces converted, jobs composed, placement applied), so a path
// whose contents changed fingerprints differently, while the same
// workload submitted as a path, as bytes, or as an in-memory schedule
// fingerprints identically. Workers, ProgressEvery and Observer do not
// participate: Results never depend on them.
func Fingerprint(sp Spec) (string, error) {
	_, fp, err := ResolveSpec(sp)
	return fp, err
}

// ResolveSpec validates the spec, resolves its workload exactly once
// (files read, traces converted, jobs composed), and returns an
// equivalent spec pinned to that resolution alongside its Fingerprint.
// Run on the pinned spec skips workload resolution, so callers that need
// the content address and then the simulation — the service's submit
// path — pay for conversion once instead of twice. The pin captures the
// sources as they were at resolution time; it is the caller's choice to
// trade file re-reads for that snapshot.
func ResolveSpec(sp Spec) (Spec, string, error) {
	if err := sp.Validate(); err != nil {
		return Spec{}, "", err
	}
	sch, jobNodes, err := sp.resolve()
	if err != nil {
		return Spec{}, "", err
	}
	name := sp.backendName()
	def, _ := Lookup(name)
	cfgRaw, err := encodePayload("backend", name, def.NewConfig, sp.Config)
	if err != nil {
		return Spec{}, "", err
	}
	scale := sp.CalcScale
	if scale == 0 {
		scale = 1
	}
	head, err := json.Marshal(canonSpec{
		Schema:    SpecSchema,
		Backend:   name,
		Config:    cfgRaw,
		CalcScale: scale,
		Seed:      sp.Seed,
	})
	if err != nil {
		return Spec{}, "", fmt.Errorf("sim: encoding canonical spec: %w", err)
	}
	h := sha256.New()
	h.Write(head)
	h.Write([]byte{'\n'})
	if err := goal.WriteBinary(h, sch); err != nil {
		return Spec{}, "", fmt.Errorf("sim: digesting workload: %w", err)
	}
	// The job layout shapes Result.JobNodes, so two compositions that
	// merge into the same schedule but land jobs on different nodes must
	// not collide.
	var jb []byte
	jb = binary.AppendVarint(jb, int64(len(jobNodes)))
	for _, nodes := range jobNodes {
		jb = binary.AppendVarint(jb, int64(len(nodes)))
		for _, n := range nodes {
			jb = binary.AppendVarint(jb, int64(n))
		}
	}
	h.Write(jb)
	sp.resolved = &resolvedWorkload{sched: sch, jobNodes: jobNodes}
	return sp, hex.EncodeToString(h.Sum(nil)), nil
}
