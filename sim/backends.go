package sim

import (
	"fmt"

	"atlahs/internal/backend"
	"atlahs/internal/core"
	"atlahs/internal/fluid"
	"atlahs/internal/pktnet"
)

// LGSConfig configures the message-level LogGOPS backend. The zero value
// selects the paper's AI parameters.
type LGSConfig struct {
	// Params is the LogGOPS parameter set (AIParams, HPCParams, or custom).
	// The zero value means AIParams().
	Params LogGOPS
}

// PktConfig configures the packet-level backend. The zero value builds a
// non-oversubscribed fat tree with 4 hosts per ToR, default links, MPRDMA
// congestion control and LGS-matched host overheads.
type PktConfig struct {
	// Topo is an explicit fabric; when nil a two-level fat tree is sized to
	// the schedule from the fields below.
	Topo *Topology
	// HostsPerToR is the fat-tree radix (default 4).
	HostsPerToR int
	// Oversub is the ToR:core oversubscription ratio (default 1). It is an
	// error for Oversub to exceed HostsPerToR — that would need fewer than
	// one core switch.
	Oversub int
	// Cores, when positive, sets the core-switch count directly and
	// overrides Oversub.
	Cores int
	// Link parameterises every fabric link; zero means DefaultLinkSpec().
	Link LinkSpec
	// CC selects congestion control: "mprdma", "swift", "dctcp" or "ndp"
	// (default "mprdma").
	CC string
	// Seed seeds the network; 0 inherits Spec.Seed.
	Seed uint64
	// Params are the host-side send/recv overheads; zero means
	// DefaultNetParams().
	Params NetParams
	// MCT, when non-nil, accumulates every message's completion time
	// (paper Fig 11's metric).
	MCT *Sample
}

// FluidConfig configures the flow-level fluid backend. The zero value
// matches PktConfig's topology defaults with no software overhead or
// jitter.
type FluidConfig struct {
	// Topo is an explicit fabric; when nil a two-level fat tree is sized to
	// the schedule from the fields below.
	Topo *Topology
	// HostsPerToR is the fat-tree radix (default 4).
	HostsPerToR int
	// Oversub is the ToR:core oversubscription ratio (default 1); it may
	// not exceed HostsPerToR.
	Oversub int
	// Cores, when positive, overrides Oversub with a direct core count.
	Cores int
	// Link parameterises every fabric link; zero means DefaultLinkSpec().
	Link LinkSpec
	// Overhead is a fixed software latency added to every message.
	Overhead Duration
	// JitterFrac adds deterministic pseudo-random per-message delay in
	// [0, JitterFrac] of the transfer time (0 disables).
	JitterFrac float64
	// Seed seeds the jitter; 0 inherits Spec.Seed.
	Seed uint64
	// Params are the host-side send/recv overheads; zero means
	// DefaultNetParams().
	Params NetParams
}

// FatTree builds a two-level fat tree covering ranks hosts: hostsPerToR
// hosts per ToR (0 = 4) and either an explicit core-switch count (cores >
// 0) or one derived from the ToR:core oversubscription ratio (oversub, 0 =
// 1). An oversubscription ratio higher than hostsPerToR is rejected — it
// would call for less than one core switch — instead of being clamped to a
// topology the caller did not ask for.
func FatTree(ranks, hostsPerToR, oversub, cores int, link LinkSpec) (*Topology, error) {
	if hostsPerToR <= 0 {
		hostsPerToR = 4
	}
	if cores <= 0 {
		if oversub <= 0 {
			oversub = 1
		}
		if oversub > hostsPerToR {
			return nil, fmt.Errorf("sim: oversubscription %d:1 exceeds %d hosts per ToR (fewer than one core switch); lower -oversub or raise -hosts-per-tor", oversub, hostsPerToR)
		}
		cores = hostsPerToR / oversub
	}
	if link == (LinkSpec{}) {
		link = DefaultLinkSpec()
	}
	return backend.FatTreeFor(ranks, hostsPerToR, cores, link)
}

// fabricTopo resolves the shared topology fields of PktConfig/FluidConfig.
func fabricTopo(explicit *Topology, ranks, hostsPerToR, oversub, cores int, link LinkSpec) (*Topology, error) {
	if explicit != nil {
		return explicit, nil
	}
	return FatTree(ranks, hostsPerToR, oversub, cores, link)
}

func init() {
	Register(Definition{Name: "lgs", Parallel: true, New: newLGS,
		NewConfig: func() any { return new(LGSConfig) }})
	Register(Definition{Name: "pkt", New: newPkt,
		NewConfig: func() any { return new(PktConfig) }})
	Register(Definition{Name: "fluid", New: newFluid,
		NewConfig: func() any { return new(FluidConfig) }})
}

func newLGS(cfg any, _ Env) (core.Backend, error) {
	c, err := ConfigAs[LGSConfig]("lgs", cfg)
	if err != nil {
		return nil, err
	}
	if c.Params == (LogGOPS{}) {
		c.Params = AIParams()
	}
	return backend.NewLGS(c.Params), nil
}

func newPkt(cfg any, env Env) (core.Backend, error) {
	c, err := ConfigAs[PktConfig]("pkt", cfg)
	if err != nil {
		return nil, err
	}
	tp, err := fabricTopo(c.Topo, env.Ranks, c.HostsPerToR, c.Oversub, c.Cores, c.Link)
	if err != nil {
		return nil, err
	}
	if c.CC == "" {
		c.CC = "mprdma"
	}
	if c.Seed == 0 {
		c.Seed = env.Seed
	}
	if c.Params == (NetParams{}) {
		c.Params = DefaultNetParams()
	}
	b := backend.NewPkt(backend.PktConfig{
		Net:    pktnet.Config{Topo: tp, CC: c.CC, Seed: c.Seed},
		Params: c.Params,
	})
	if c.MCT != nil {
		b.AttachMCT(c.MCT)
	}
	return b, nil
}

func newFluid(cfg any, env Env) (core.Backend, error) {
	c, err := ConfigAs[FluidConfig]("fluid", cfg)
	if err != nil {
		return nil, err
	}
	tp, err := fabricTopo(c.Topo, env.Ranks, c.HostsPerToR, c.Oversub, c.Cores, c.Link)
	if err != nil {
		return nil, err
	}
	if c.Seed == 0 {
		c.Seed = env.Seed
	}
	if c.Params == (NetParams{}) {
		c.Params = DefaultNetParams()
	}
	return backend.NewFluid(backend.FluidConfig{
		Net: fluid.Config{
			Topo:       tp,
			Overhead:   c.Overhead,
			JitterFrac: c.JitterFrac,
			Seed:       c.Seed,
		},
		Params: c.Params,
	}), nil
}
