package sim

import (
	"fmt"
	"sort"
	"strings"

	"atlahs/internal/workload/micro"
	"atlahs/internal/workload/synth"
)

// GenRequest is the input to a registered workload generator: the
// normalised synthetic declaration (for pattern generators), the decoded
// statistical model (for model-backed generators), the requested rank
// count, and the resolved seed (never zero).
type GenRequest struct {
	// Synthetic is the declared pattern with its Seed already resolved.
	// Only meaningful to pattern generators.
	Synthetic Synthetic
	// Model is the decoded workload model. Only meaningful to generators
	// registered with FromModel.
	Model *WorkloadModel
	// Ranks is the requested rank count.
	Ranks int
	// Seed is the resolved deterministic seed.
	Seed uint64
}

// GeneratorDef describes one registered workload generator. The built-in
// microbenchmark patterns (ring, alltoall, incast, permutation, uniform,
// bsp) and the statistical model sampler register themselves; third-party
// generators join through RegisterGenerator and become valid
// Synthetic.Pattern names.
type GeneratorDef struct {
	// Name is the registry key (Synthetic.Pattern for pattern generators).
	Name string
	// FromModel marks a generator that samples GenRequest.Model instead of
	// a Synthetic pattern; it is excluded from SyntheticPatterns.
	FromModel bool
	// New builds the schedule for one request.
	New func(GenRequest) (*Schedule, error)
}

var generators = map[string]GeneratorDef{}

// RegisterGenerator adds a workload generator to the registry. It panics
// on an empty name, a nil constructor, or a duplicate registration —
// generator names are a global namespace like backends and frontends.
func RegisterGenerator(def GeneratorDef) {
	if def.Name == "" {
		panic("sim: RegisterGenerator with empty name")
	}
	if def.New == nil {
		panic(fmt.Sprintf("sim: RegisterGenerator(%q) with nil constructor", def.Name))
	}
	if _, dup := generators[def.Name]; dup {
		panic(fmt.Sprintf("sim: generator %q registered twice", def.Name))
	}
	generators[def.Name] = def
}

// LookupGenerator returns the registered generator definition.
func LookupGenerator(name string) (GeneratorDef, bool) {
	def, ok := generators[name]
	return def, ok
}

// Generators lists every registered generator name, sorted.
func Generators() []string {
	names := make([]string, 0, len(generators))
	for name := range generators {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SyntheticPatterns lists the generator names Synthetic understands
// (every registered generator that is not model-backed), sorted.
func SyntheticPatterns() []string {
	names := make([]string, 0, len(generators))
	for name, def := range generators {
		if !def.FromModel {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// patternGenerator resolves a Synthetic.Pattern name, producing the one
// unknown-pattern error shared by validation and generation.
func patternGenerator(name string) (GeneratorDef, error) {
	def, ok := LookupGenerator(name)
	if !ok || def.FromModel {
		return GeneratorDef{}, fmt.Errorf("sim: unknown synthetic pattern %q (want one of %s)",
			name, strings.Join(SyntheticPatterns(), ", "))
	}
	return def, nil
}

// modelGeneratorName is the registry key of the statistical model sampler.
const modelGeneratorName = "model"

func init() {
	RegisterGenerator(GeneratorDef{Name: "ring", New: func(req GenRequest) (*Schedule, error) {
		return micro.Ring(req.Ranks, req.Synthetic.Bytes), nil
	}})
	RegisterGenerator(GeneratorDef{Name: "alltoall", New: func(req GenRequest) (*Schedule, error) {
		return micro.AllToAll(req.Ranks, req.Synthetic.Bytes), nil
	}})
	RegisterGenerator(GeneratorDef{Name: "incast", New: func(req GenRequest) (*Schedule, error) {
		fanin := req.Synthetic.Fanin
		if fanin <= 0 {
			fanin = req.Ranks - 1
		}
		return micro.Incast(req.Ranks, fanin, req.Synthetic.Bytes), nil
	}})
	RegisterGenerator(GeneratorDef{Name: "permutation", New: func(req GenRequest) (*Schedule, error) {
		return micro.Permutation(req.Ranks, req.Synthetic.Bytes, req.Seed), nil
	}})
	RegisterGenerator(GeneratorDef{Name: "uniform", New: func(req GenRequest) (*Schedule, error) {
		msgs := req.Synthetic.Msgs
		if msgs <= 0 {
			msgs = 100
		}
		return micro.UniformRandom(req.Ranks, msgs, req.Synthetic.Bytes, req.Seed), nil
	}})
	RegisterGenerator(GeneratorDef{Name: "bsp", New: func(req GenRequest) (*Schedule, error) {
		phases := req.Synthetic.Phases
		if phases <= 0 {
			phases = 4
		}
		calc := req.Synthetic.CalcNanos
		if calc <= 0 {
			calc = 1000
		}
		return micro.BulkSynchronous(req.Ranks, phases, req.Synthetic.Bytes, calc), nil
	}})
	RegisterGenerator(GeneratorDef{Name: modelGeneratorName, FromModel: true, New: func(req GenRequest) (*Schedule, error) {
		return synth.Generate(req.Model, req.Ranks, req.Seed)
	}})
}
