package sim

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"atlahs/internal/workload/hpcapps"
	"atlahs/internal/workload/llm"
	"atlahs/internal/workload/oltp"
)

// threeJobSpec declares the paper's heterogeneous co-location scenario —
// LLM training + MPI stencil + storage checkpoint on one fabric — from
// raw traces in three different formats, all sniffed.
func threeJobSpec(t *testing.T) []JobSpec {
	t.Helper()
	rep, err := llm.Generate(llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 1, DP: 8, EP: 1, GlobalBatch: 8},
		Scale: 1e-4,
		Seed:  31,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ai bytes.Buffer
	if _, err := rep.WriteTo(&ai); err != nil {
		t.Fatal(err)
	}
	tr, err := hpcapps.Generate(hpcapps.Config{App: hpcapps.CloverLeaf, Ranks: 4, Steps: 2, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	var hpc bytes.Buffer
	if _, err := tr.WriteTo(&hpc); err != nil {
		t.Fatal(err)
	}
	var spc bytes.Buffer
	if _, err := oltp.GenerateFinancial(oltp.FinancialConfig{Ops: 40, Seed: 33}).WriteTo(&spc); err != nil {
		t.Fatal(err)
	}
	return []JobSpec{
		{Workload: Workload{Trace: ai.Bytes(), FrontendConfig: NsysConfig{GPUsPerNode: 4}}},
		{Workload: Workload{Trace: hpc.Bytes()}},
		{Workload: Workload{Trace: spc.Bytes(), FrontendConfig: SPCConfig{Hosts: 2, CCS: 1, BSS: 3}}},
	}
}

// TestComposedScenarioDeterministic: the composed AI+HPC+storage scenario
// must produce bit-identical results on the serial and sharded parallel
// engines, for both placement policies.
func TestComposedScenarioDeterministic(t *testing.T) {
	jobs := threeJobSpec(t)
	for _, placement := range Placements() {
		serial := runResult(t, Spec{Jobs: jobs, Placement: placement})
		parallel := runResult(t, Spec{Jobs: jobs, Placement: placement, Workers: 4})
		if !parallel.Parallel || parallel.Workers != 4 {
			t.Fatalf("%s: wanted the 4-worker parallel engine, got parallel=%v workers=%d",
				placement, parallel.Parallel, parallel.Workers)
		}
		serial.Workers, parallel.Workers = 0, 0
		serial.Parallel, parallel.Parallel = false, false
		serial.Events, parallel.Events = 0, 0       // engine-dependent accounting
		serial.Metrics, parallel.Metrics = nil, nil // engine-dependent accounting
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%s: serial and parallel runs diverged\nserial   %+v\nparallel %+v",
				placement, serial, parallel)
		}
	}
}

// TestComposePlacements checks the node layouts the two policies hand
// back: disjoint per-job sets that exactly cover the fabric, contiguous
// for packed, round-robin for interleaved.
func TestComposePlacements(t *testing.T) {
	jobs := []JobSpec{
		{Workload: Workload{Synthetic: &Synthetic{Pattern: "ring", Ranks: 4, Bytes: 1024}}},
		{Workload: Workload{Synthetic: &Synthetic{Pattern: "ring", Ranks: 2, Bytes: 1024}}},
	}
	packed := runResult(t, Spec{Jobs: jobs})
	if want := [][]int{{0, 1, 2, 3}, {4, 5}}; !reflect.DeepEqual(packed.JobNodes, want) {
		t.Fatalf("packed JobNodes %v, want %v", packed.JobNodes, want)
	}
	inter := runResult(t, Spec{Jobs: jobs, Placement: "interleaved"})
	if want := [][]int{{0, 2, 4, 5}, {1, 3}}; !reflect.DeepEqual(inter.JobNodes, want) {
		t.Fatalf("interleaved JobNodes %v, want %v", inter.JobNodes, want)
	}
	if packed.Ranks != 6 || inter.Ranks != 6 {
		t.Fatalf("composed fabric sizes %d/%d, want 6", packed.Ranks, inter.Ranks)
	}
	// The two rings are independent: per-job traffic is unchanged by the
	// placement policy on the topology-oblivious backend.
	if packed.Runtime != inter.Runtime {
		t.Fatalf("lgs runtime changed with placement: %v vs %v", packed.Runtime, inter.Runtime)
	}
}

// TestComposeMatchesManualMerge: a Jobs spec over in-memory schedules is
// exactly a run of the goal.Compose merge — same results as composing by
// hand and using the single-Schedule path.
func TestComposeMatchesManualMerge(t *testing.T) {
	a := runResult(t, Spec{Jobs: []JobSpec{
		{Workload: Workload{Synthetic: &Synthetic{Pattern: "alltoall", Ranks: 4, Bytes: 2048}}},
		{Workload: Workload{Synthetic: &Synthetic{Pattern: "incast", Ranks: 4, Bytes: 4096}}},
	}})
	// Single-workload runs of each job, sharing no fabric: per-job rank
	// completion must carry over unchanged on the topology-oblivious lgs.
	j0 := runResult(t, Spec{Workload: Workload{Synthetic: &Synthetic{Pattern: "alltoall", Ranks: 4, Bytes: 2048}}})
	j1 := runResult(t, Spec{Workload: Workload{Synthetic: &Synthetic{Pattern: "incast", Ranks: 4, Bytes: 4096}}})
	for r, end := range j0.RankEnd {
		if a.RankEnd[a.JobNodes[0][r]] != end {
			t.Fatalf("job 0 rank %d: composed end %v, solo end %v", r, a.RankEnd[a.JobNodes[0][r]], end)
		}
	}
	for r, end := range j1.RankEnd {
		if a.RankEnd[a.JobNodes[1][r]] != end {
			t.Fatalf("job 1 rank %d: composed end %v, solo end %v", r, a.RankEnd[a.JobNodes[1][r]], end)
		}
	}
	if a.Ops != j0.Ops+j1.Ops {
		t.Fatalf("composed ops %d, want %d", a.Ops, j0.Ops+j1.Ops)
	}
}

func TestJobsSpecErrors(t *testing.T) {
	ring := &Synthetic{Pattern: "ring", Ranks: 2, Bytes: 64}
	cases := map[string]Spec{
		"jobs+top-level": {Workload: Workload{Synthetic: ring},
			Jobs: []JobSpec{{Workload: Workload{Synthetic: ring}}}},
		"placement-only": {Workload: Workload{Synthetic: ring},
			Placement: "packed"},
		"bad-placement": {Jobs: []JobSpec{{Workload: Workload{Synthetic: ring}}}, Placement: "diagonal"},
		"empty-job":     {Jobs: []JobSpec{{}}},
		"two-sources":   {Jobs: []JobSpec{{Workload: Workload{Synthetic: ring, GoalPath: "x"}}}},
	}
	for label, spec := range cases {
		if _, err := Run(context.Background(), spec); err == nil {
			t.Errorf("%s: expected an error", label)
		}
	}
	if _, err := Run(context.Background(), Spec{Jobs: []JobSpec{{Workload: Workload{Synthetic: ring}}, {}}}); err == nil ||
		!strings.Contains(err.Error(), "job 1") {
		t.Fatalf("job errors should name the job, got %v", err)
	}
}
