package sim

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"atlahs/internal/workload/micro"
)

// minedDoc mines a model from an 8-rank recorded workload and returns the
// model plus its canonical encoding.
func minedDoc(t *testing.T) (*WorkloadModel, []byte) {
	t.Helper()
	m, err := MineModel(micro.BulkSynchronous(8, 3, 4096, 1200), "model-test")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	return m, buf.Bytes()
}

// TestModelWorkloadRuns: the acceptance path — a model mined from an
// 8-rank workload generates valid schedules at 64 and 1024 ranks that run
// on lgs with serial==parallel bit-identical results.
func TestModelWorkloadRuns(t *testing.T) {
	_, doc := minedDoc(t)
	for _, ranks := range []int{64, 1024} {
		serial, err := Run(context.Background(), Spec{
			Workload: Workload{Model: &ModelGen{Ranks: ranks, Seed: 11, Doc: doc}},
		})
		if err != nil {
			t.Fatalf("ranks %d serial: %v", ranks, err)
		}
		if serial.Ops == 0 || serial.Ranks != ranks {
			t.Fatalf("ranks %d: %d ops over %d ranks", ranks, serial.Ops, serial.Ranks)
		}
		parallel, err := Run(context.Background(), Spec{
			Workload: Workload{Model: &ModelGen{Ranks: ranks, Seed: 11, Doc: doc}},
			Workers:  4,
		})
		if err != nil {
			t.Fatalf("ranks %d parallel: %v", ranks, err)
		}
		if serial.Runtime != parallel.Runtime || serial.Ops != parallel.Ops ||
			serial.Events != parallel.Events || !reflect.DeepEqual(serial.RankEnd, parallel.RankEnd) {
			t.Fatalf("ranks %d: serial (%v, %d ops, %d events) != parallel (%v, %d ops, %d events)",
				ranks, serial.Runtime, serial.Ops, serial.Events,
				parallel.Runtime, parallel.Ops, parallel.Events)
		}
	}
}

// TestModelWorkloadSourcesAgree: the same model through Doc, ModelPath,
// and a pre-generated schedule must simulate identically and fingerprint
// identically (the digest covers resolved content, not provenance).
func TestModelWorkloadSourcesAgree(t *testing.T) {
	m, doc := minedDoc(t)
	path := filepath.Join(t.TempDir(), "run.model.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	sched, err := GenerateFromModel(m, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(context.Background(), Spec{Workload: Workload{Schedule: sched}})
	if err != nil {
		t.Fatal(err)
	}
	wantFP, err := Fingerprint(Spec{Workload: Workload{Schedule: sched}})
	if err != nil {
		t.Fatal(err)
	}
	for name, spec := range map[string]Spec{
		"doc":  {Workload: Workload{Model: &ModelGen{Ranks: 32, Seed: 7, Doc: doc}}},
		"path": {Workload: Workload{ModelPath: path, Model: &ModelGen{Ranks: 32, Seed: 7}}},
	} {
		got, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Runtime != want.Runtime || got.Ops != want.Ops {
			t.Fatalf("%s: (%v, %d ops), want (%v, %d ops)", name, got.Runtime, got.Ops, want.Runtime, want.Ops)
		}
		fp, err := Fingerprint(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp != wantFP {
			t.Fatalf("%s: fingerprint %s, want %s", name, fp, wantFP)
		}
	}
}

// TestModelSeedInheritance: a ModelGen with zero Seed inherits Spec.Seed,
// so two different top-level seeds generate different workloads.
func TestModelSeedInheritance(t *testing.T) {
	_, doc := minedDoc(t)
	fp := func(seed uint64) string {
		t.Helper()
		s, err := Fingerprint(Spec{
			Workload: Workload{Model: &ModelGen{Ranks: 16, Doc: doc}},
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if fp(3) == fp(4) {
		t.Fatal("different Spec.Seed values generated identical model workloads")
	}
	// An explicit ModelGen.Seed overrides the inherited one: same
	// workload digest, but Spec.Seed still participates in the canonical
	// head, so the addresses differ while the schedules agree.
	a, err := Run(context.Background(), Spec{
		Workload: Workload{Model: &ModelGen{Ranks: 16, Seed: 9, Doc: doc}},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), Spec{
		Workload: Workload{Model: &ModelGen{Ranks: 16, Seed: 9, Doc: doc}},
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime || a.Ops != b.Ops {
		t.Fatalf("explicit ModelGen.Seed did not pin the workload: (%v, %d) vs (%v, %d)",
			a.Runtime, a.Ops, b.Runtime, b.Ops)
	}
}

// TestModelWorkloadValidate pins the model-specific validation errors.
func TestModelWorkloadValidate(t *testing.T) {
	_, doc := minedDoc(t)
	for name, c := range map[string]struct {
		spec Spec
		want string
	}{
		"doc-and-path": {Spec{Workload: Workload{Model: &ModelGen{Doc: doc}, ModelPath: "x.json"}}, "not both"},
		"no-doc":       {Spec{Workload: Workload{Model: &ModelGen{Ranks: 8}}}, "needs a Doc"},
		"neg-ranks":    {Spec{Workload: Workload{Model: &ModelGen{Ranks: -1, Doc: doc}}}, "Model.Ranks"},
		"two-sources":  {Spec{Workload: Workload{Model: &ModelGen{Doc: doc}, GoalPath: "x"}}, "exactly one"},
	} {
		t.Run(name, func(t *testing.T) {
			verr := c.spec.Validate()
			if verr == nil || !strings.Contains(verr.Error(), c.want) {
				t.Fatalf("Validate error %v, want it to contain %q", verr, c.want)
			}
			// Error parity with the other entry points.
			if _, rerr := Run(context.Background(), c.spec); rerr == nil || rerr.Error() != verr.Error() {
				t.Fatalf("Run error %q, Validate error %q — entry points disagree", rerr, verr)
			}
		})
	}
}

// TestModelWorkloadBadDoc: a syntactically invalid model document
// surfaces from Run (resolution time), like a malformed trace.
func TestModelWorkloadBadDoc(t *testing.T) {
	_, err := Run(context.Background(), Spec{
		Workload: Workload{Model: &ModelGen{Ranks: 8, Doc: []byte("not a model")}},
	})
	if err == nil || !strings.Contains(err.Error(), "decoding model") {
		t.Fatalf("bad model doc: %v", err)
	}
	_, err = Run(context.Background(), Spec{
		Workload: Workload{ModelPath: filepath.Join(t.TempDir(), "missing.json")},
	})
	if err == nil || !strings.Contains(err.Error(), "reading model") {
		t.Fatalf("missing model file: %v", err)
	}
}

// TestGeneratorRegistry pins the registry surface: the built-ins are
// present, model is excluded from SyntheticPatterns, and duplicate or
// malformed registrations panic.
func TestGeneratorRegistry(t *testing.T) {
	pats := SyntheticPatterns()
	for _, want := range []string{"alltoall", "bsp", "incast", "permutation", "ring", "uniform"} {
		found := false
		for _, p := range pats {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("SyntheticPatterns() = %v, missing %q", pats, want)
		}
	}
	for _, p := range pats {
		if p == "model" {
			t.Fatal("model generator leaked into SyntheticPatterns")
		}
	}
	if _, ok := LookupGenerator("model"); !ok {
		t.Fatal("model generator not registered")
	}
	all := Generators()
	if len(all) != len(pats)+1 {
		t.Fatalf("Generators() = %v, want the patterns plus model", all)
	}
	for name, def := range map[string]GeneratorDef{
		"empty-name": {New: func(GenRequest) (*Schedule, error) { return nil, nil }},
		"nil-new":    {Name: "x"},
		"duplicate":  {Name: "ring", New: func(GenRequest) (*Schedule, error) { return nil, nil }},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("RegisterGenerator did not panic")
				}
			}()
			RegisterGenerator(def)
		})
	}
}
