package sim

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"strings"
	"testing"

	"atlahs/internal/workload/micro"
)

// codecSpecs is one wire-worthy spec per built-in backend and frontend —
// the shapes the codec must round-trip (and the fuzz seed corpus).
func codecSpecs() map[string]Spec {
	var sched bytes.Buffer
	if err := WriteGOALBinary(&sched, micro.Ring(3, 512)); err != nil {
		panic(err)
	}
	return map[string]Spec{
		"lgs": {Workload: Workload{Synthetic: &Synthetic{Pattern: "ring", Ranks: 4, Bytes: 1024}},
			Backend: "lgs",
			Config:  LGSConfig{Params: HPCParams()},
			Workers: 4,
		},
		"pkt": {Workload: Workload{GoalBytes: sched.Bytes()},
			Backend: "pkt",
			Config:  PktConfig{HostsPerToR: 8, Oversub: 2, CC: "dctcp"},
			Seed:    7,
		},
		"fluid": {Workload: Workload{Schedule: micro.AllToAll(3, 256)},
			Backend:   "fluid",
			Config:    FluidConfig{JitterFrac: 0.1, Overhead: 1500},
			CalcScale: 1.5,
		},
		"goal-frontend": {Workload: Workload{Trace: []byte("num_ranks 1\nrank 0 {\nl1: calc 5\n}\n")}},
		"nsys":          {Workload: Workload{TracePath: "run.nsys", Frontend: "nsys", FrontendConfig: NsysConfig{GPUsPerNode: 2, Channels: 2}}},
		"mpi": {Workload: Workload{TracePath: "run.mpi", Frontend: "mpi", FrontendConfig: MPIConfig{
			Algos:        map[CollectiveKind]CollectiveAlgo{CollAllreduce: AlgoRing},
			MinComputeNs: 500,
		}},
		},
		"spc": {Workload: Workload{TracePath: "run.spc", Frontend: "spc", FrontendConfig: SPCConfig{Hosts: 2, Replicas: 3}}},
		"chakra": {Workload: Workload{TracePath: "run.et", Frontend: "chakra", FrontendConfig: ChakraConfig{
			WorldGroup: "world",
			Groups:     map[string][]int{"tp": {0, 1}},
		}},
		},
		"model": {Workload: Workload{Model: &ModelGen{Ranks: 12, Seed: 5, Doc: testModelDoc()}},
			Backend: "lgs",
		},
		"model-path": {Workload: Workload{ModelPath: "run.model.json", Model: &ModelGen{Ranks: 24}},
			Backend: "lgs",
		},
		"multi-job": {
			Jobs: []JobSpec{
				{Workload: Workload{Synthetic: &Synthetic{Pattern: "bsp", Ranks: 4, Bytes: 2048, Phases: 2}}},
				{Workload: Workload{TracePath: "ckpt.spc", Frontend: "spc"}},
			},
			Placement: "interleaved",
			Backend:   "lgs",
			Seed:      3,
		},
	}
}

// testModelDoc mines a small model and returns its canonical encoding.
func testModelDoc() []byte {
	m, err := MineModel(micro.BulkSynchronous(4, 2, 1024, 500), "codec-test")
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := EncodeModel(&buf, m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestSpecCodecRoundTrip pins the codec's core contract for every built-in
// backend and frontend: unmarshal(marshal(spec)) is stable under another
// round trip, and re-encoding is byte-identical (one canonical encoding
// per spec).
func TestSpecCodecRoundTrip(t *testing.T) {
	for name, spec := range codecSpecs() {
		t.Run(name, func(t *testing.T) {
			m1, err := MarshalSpec(spec)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			u1, err := UnmarshalSpec(m1)
			if err != nil {
				t.Fatalf("unmarshal: %v\nwire:\n%s", err, m1)
			}
			m2, err := MarshalSpec(u1)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(m1, m2) {
				t.Fatalf("encoding not canonical:\nfirst:\n%s\nsecond:\n%s", m1, m2)
			}
			u2, err := UnmarshalSpec(m2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(u1, u2) {
				t.Fatalf("round trip changed the spec:\nfirst:  %+v\nsecond: %+v", u1, u2)
			}
		})
	}
}

// TestSpecCodecPreservesResults: a spec that went through the wire must
// simulate bit-identically to the original.
func TestSpecCodecPreservesResults(t *testing.T) {
	spec := Spec{Workload: Workload{Schedule: micro.BulkSynchronous(6, 3, 8192, 2000)},
		Backend: "lgs",
		Config:  LGSConfig{Params: AIParams()}}
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), decoded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runtime != want.Runtime || got.Ops != want.Ops || got.Events != want.Events {
		t.Fatalf("wire round trip changed the simulation: (%v, %d, %d) vs (%v, %d, %d)",
			got.Runtime, got.Ops, got.Events, want.Runtime, want.Ops, want.Events)
	}
}

func TestMarshalSpecRejects(t *testing.T) {
	ring := &Synthetic{Pattern: "ring", Ranks: 2, Bytes: 64}
	topo, err := FatTree(4, 4, 1, 0, LinkSpec{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]struct {
		spec Spec
		want string
	}{
		"observer": {Spec{Workload: Workload{Synthetic: ring},
			Observer: NopObserver{}}, "Observer"},
		"invalid": {Spec{}, "no workload"},
		"unknown-backend": {Spec{Workload: Workload{Synthetic: ring},
			Backend: "nosim"}, "unknown backend"},
		"config-mismatch": {Spec{Workload: Workload{Synthetic: ring},
			Backend: "lgs",
			Config:  PktConfig{}}, "wants a"},
		"explicit-topo": {Spec{Workload: Workload{Synthetic: ring},
			Backend: "pkt",
			Config:  PktConfig{Topo: topo}}, "cannot cross the wire"},
		"mct-sink": {Spec{Workload: Workload{Synthetic: ring},
			Backend: "pkt",
			Config:  PktConfig{MCT: &Sample{}}}, "cannot cross the wire"},
		"fluid-topo": {Spec{Workload: Workload{Synthetic: ring},
			Backend: "fluid",
			Config:  FluidConfig{Topo: topo}}, "cannot cross the wire"},
		"sniffed-config":    {Spec{Workload: Workload{Trace: []byte("x"), FrontendConfig: NsysConfig{}}}, "named explicitly"},
		"goal-config":       {Spec{Workload: Workload{Trace: []byte("x"), Frontend: "goal", FrontendConfig: NsysConfig{}}}, "no wire config type"},
		"frontend-mismatch": {Spec{Workload: Workload{TracePath: "a.nsys", Frontend: "nsys", FrontendConfig: MPIConfig{}}}, "wants a"},
		"placement-sans-job": {Spec{Workload: Workload{Synthetic: ring},
			Placement: "packed"}, "only meaningful with Jobs"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := MarshalSpec(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want it to contain %q", err, c.want)
			}
		})
	}
}

func TestUnmarshalSpecRejects(t *testing.T) {
	cases := map[string]struct {
		wire string
		want string
	}{
		"garbage":          {"nope", "decoding spec"},
		"wrong-schema":     {`{"schema":"atlahs.spec/v2","backend":"lgs"}`, "unknown spec schema"},
		"no-schema":        {`{"backend":"lgs"}`, "unknown spec schema"},
		"unknown-field":    {`{"schema":"atlahs.spec/v1","bakend":"lgs"}`, "unknown field"},
		"trailing-data":    {`{"schema":"atlahs.spec/v1","synthetic":{"pattern":"ring","ranks":2}} {}`, "trailing data"},
		"no-workload":      {`{"schema":"atlahs.spec/v1","backend":"lgs"}`, "no workload"},
		"unknown-backend":  {`{"schema":"atlahs.spec/v1","synthetic":{"pattern":"ring","ranks":2},"backend":"nosim"}`, "unknown backend"},
		"unknown-frontend": {`{"schema":"atlahs.spec/v1","trace_path":"x","frontend":"nofmt"}`, "unknown frontend"},
		"pkt-workers": {`{"schema":"atlahs.spec/v1","synthetic":{"pattern":"ring","ranks":2},"backend":"pkt","workers":4}`,
			"shares fabric state"},
		"bad-config-field": {`{"schema":"atlahs.spec/v1","synthetic":{"pattern":"ring","ranks":2},"backend":"lgs","config":{"Nope":1}}`,
			"unknown field"},
		"text-schedule": {`{"schema":"atlahs.spec/v1","schedule":"bnVtX3JhbmtzIDEK"}`, "binary GOAL"},
		"wire-topo": {`{"schema":"atlahs.spec/v1","synthetic":{"pattern":"ring","ranks":2},"backend":"pkt","config":{"Topo":{}}}`,
			"cannot cross the wire"},
		"config-sans-frontend": {`{"schema":"atlahs.spec/v1","trace_path":"x","frontend_config":{}}`, "named explicitly"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := UnmarshalSpec([]byte(c.wire)); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want it to contain %q", err, c.want)
			}
		})
	}
}

// TestValidateSharedErrorText: the codec and Run must reject an invalid
// spec with byte-identical error text — Validate is the one path.
func TestValidateSharedErrorText(t *testing.T) {
	for name, spec := range map[string]Spec{
		"two-sources": {Workload: Workload{Schedule: micro.Ring(2, 64), Synthetic: &Synthetic{Pattern: "ring", Ranks: 2}}},
		"unknown-backend": {Workload: Workload{Synthetic: &Synthetic{Pattern: "ring", Ranks: 2}},
			Backend: "nosim"},
		"pkt-workers": {Workload: Workload{Synthetic: &Synthetic{Pattern: "ring", Ranks: 2}},
			Backend: "pkt",
			Workers: 4},
		"bad-pattern":   {Workload: Workload{Synthetic: &Synthetic{Pattern: "nope", Ranks: 2}}},
		"bad-placement": {Jobs: []JobSpec{{Workload: Workload{Synthetic: &Synthetic{Pattern: "ring", Ranks: 2}}}}, Placement: "diagonal"},
	} {
		t.Run(name, func(t *testing.T) {
			verr := spec.Validate()
			if verr == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if _, rerr := Run(context.Background(), spec); rerr == nil || rerr.Error() != verr.Error() {
				t.Fatalf("Run error %q, Validate error %q — entry points disagree", rerr, verr)
			}
			if _, merr := MarshalSpec(spec); merr == nil || merr.Error() != verr.Error() {
				t.Fatalf("MarshalSpec error %q, Validate error %q — entry points disagree", merr, verr)
			}
		})
	}
}

func TestFingerprint(t *testing.T) {
	base := Spec{Workload: Workload{Synthetic: &Synthetic{Pattern: "alltoall", Ranks: 4, Bytes: 4096}},
		Backend: "lgs"}
	fp := func(t *testing.T, sp Spec) string {
		t.Helper()
		s, err := Fingerprint(sp)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	want := fp(t, base)
	if len(want) != 64 {
		t.Fatalf("fingerprint %q is not hex SHA-256", want)
	}

	// Execution knobs never affect results, so they must not affect the
	// address; neither do spellings of the same default.
	for name, same := range map[string]Spec{
		"workers": {Workload: Workload{Synthetic: base.Synthetic},
			Backend: "lgs",
			Workers: 8},
		"progress": {Workload: Workload{Synthetic: base.Synthetic},
			Backend:       "lgs",
			ProgressEvery: 10},
		"default-name": {Workload: Workload{Synthetic: base.Synthetic}},
		"explicit-scale": {Workload: Workload{Synthetic: base.Synthetic},
			Backend:   "lgs",
			CalcScale: 1},
	} {
		if got := fp(t, same); got != want {
			t.Fatalf("%s: fingerprint %s, want %s (result-neutral knob changed the address)", name, got, want)
		}
	}

	// Result-affecting fields must move the address.
	for name, other := range map[string]Spec{
		"workload": {Workload: Workload{Synthetic: &Synthetic{Pattern: "alltoall", Ranks: 4, Bytes: 8192}},
			Backend: "lgs"},
		"backend": {Workload: Workload{Synthetic: base.Synthetic},
			Backend: "pkt"},
		"config": {Workload: Workload{Synthetic: base.Synthetic},
			Backend: "lgs",
			Config:  LGSConfig{Params: HPCParams()}},
		"scale": {Workload: Workload{Synthetic: base.Synthetic},
			Backend:   "lgs",
			CalcScale: 2},
		"seed": {Workload: Workload{Synthetic: base.Synthetic},
			Backend: "lgs",
			Seed:    42},
	} {
		if got := fp(t, other); got == want {
			t.Fatalf("%s: fingerprint did not change", name)
		}
	}
}

// TestResolveSpecPinsWorkload: the spec ResolveSpec returns carries its
// resolved schedule, so Run neither re-reads files nor re-converts — the
// single-resolution guarantee the service's submit path relies on.
func TestResolveSpecPinsWorkload(t *testing.T) {
	s := micro.Ring(4, 1024)
	var bin bytes.Buffer
	if err := WriteGOALBinary(&bin, s); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/pin.bin"
	if err := os.WriteFile(path, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := Spec{Workload: Workload{GoalPath: path}}
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	pinned, fp, err := ResolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if direct, err := Fingerprint(spec); err != nil || direct != fp {
		t.Fatalf("ResolveSpec fingerprint %s, Fingerprint %s (err %v)", fp, direct, err)
	}
	// Deleting the file proves Run uses the pinned resolution.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), pinned)
	if err != nil {
		t.Fatalf("pinned spec re-read the deleted file: %v", err)
	}
	if got.Runtime != want.Runtime || got.Ops != want.Ops {
		t.Fatalf("pinned run (%v, %d), want (%v, %d)", got.Runtime, got.Ops, want.Runtime, want.Ops)
	}
}

// TestFingerprintAliasesWorkloadSources: the same workload must hash the
// same whether it arrives as an in-memory schedule, serialised bytes, or
// a file path — the digest covers resolved content, not provenance.
func TestFingerprintAliasesWorkloadSources(t *testing.T) {
	s := micro.Ring(5, 2048)
	var bin bytes.Buffer
	if err := WriteGOALBinary(&bin, s); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/ring.bin"
	if err := os.WriteFile(path, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := Fingerprint(Spec{Workload: Workload{Schedule: s}})
	if err != nil {
		t.Fatal(err)
	}
	for name, spec := range map[string]Spec{
		"bytes": {Workload: Workload{GoalBytes: bin.Bytes()}},
		"path":  {Workload: Workload{GoalPath: path}},
		"trace": {Workload: Workload{Trace: bin.Bytes(), Frontend: "goal"}},
	} {
		got, err := Fingerprint(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: fingerprint %s, want %s", name, got, want)
		}
	}
}
