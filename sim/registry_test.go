package sim

import (
	"context"
	"strings"
	"testing"

	"atlahs/internal/core"
	"atlahs/internal/engine"
	"atlahs/internal/workload/micro"
)

// fakeBackend is a minimal registerable backend for registry tests.
type fakeBackend struct{ name string }

func (f *fakeBackend) Name() string { return f.name }
func (f *fakeBackend) Setup(nranks int, eng engine.Sim, over core.CompletionFunc) error {
	return nil
}
func (f *fakeBackend) Send(core.SendEvent) {}
func (f *fakeBackend) Recv(core.RecvEvent) {}
func (f *fakeBackend) Calc(core.CalcEvent) {}

func TestBuiltinBackendsRegistered(t *testing.T) {
	got := Backends()
	for _, want := range []string{"fluid", "lgs", "pkt"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("builtin backend %q missing from registry %v", want, got)
		}
	}
	def, ok := Lookup("lgs")
	if !ok || !def.Parallel {
		t.Fatalf("lgs lookup = (%+v, %v), want a parallel-capable definition", def, ok)
	}
	for _, name := range []string{"pkt", "fluid"} {
		def, ok := Lookup(name)
		if !ok || def.Parallel {
			t.Fatalf("%s lookup = (%+v, %v), want a serial-only definition", name, def, ok)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(Definition{
		Name: "registry-test-dup",
		New: func(cfg any, env Env) (core.Backend, error) {
			return &fakeBackend{name: "registry-test-dup"}, nil
		},
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register did not panic")
		}
		if !strings.Contains(r.(string), "registered twice") {
			t.Fatalf("panic %q does not name the duplicate registration", r)
		}
	}()
	Register(Definition{
		Name: "registry-test-dup",
		New: func(cfg any, env Env) (core.Backend, error) {
			return &fakeBackend{name: "registry-test-dup"}, nil
		},
	})
}

func TestRegisterRejectsBadDefinitions(t *testing.T) {
	for _, def := range []Definition{
		{Name: "", New: func(any, Env) (core.Backend, error) { return nil, nil }},
		{Name: "no-factory"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%+v) did not panic", def)
				}
			}()
			Register(def)
		}()
	}
}

func TestRunUnknownBackend(t *testing.T) {
	_, err := Run(context.Background(), Spec{Workload: Workload{Schedule: micro.Ring(2, 1024)},
		Backend: "no-such-simulator"})
	if err == nil {
		t.Fatal("expected unknown-backend error")
	}
	if !strings.Contains(err.Error(), "no-such-simulator") || !strings.Contains(err.Error(), "lgs") {
		t.Fatalf("error %q should name the unknown backend and list registered ones", err)
	}
}

func TestRunConfigTypeMismatch(t *testing.T) {
	for _, c := range []struct {
		backend string
		cfg     any
	}{
		{"lgs", PktConfig{}},
		{"pkt", LGSConfig{}},
		{"fluid", "not even a struct"},
	} {
		_, err := Run(context.Background(), Spec{Workload: Workload{Schedule: micro.Ring(2, 1024)},
			Backend: c.backend,
			Config:  c.cfg})
		if err == nil {
			t.Fatalf("%s with %T config: expected mismatch error", c.backend, c.cfg)
		}
		if !strings.Contains(err.Error(), c.backend) || !strings.Contains(err.Error(), "config") {
			t.Fatalf("%s mismatch error %q should name the backend and the config", c.backend, err)
		}
	}
}

func TestConfigAsAcceptsValuePointerAndNil(t *testing.T) {
	want := LGSConfig{Params: HPCParams()}
	if got, err := ConfigAs[LGSConfig]("lgs", want); err != nil || got != want {
		t.Fatalf("value: (%+v, %v)", got, err)
	}
	if got, err := ConfigAs[LGSConfig]("lgs", &want); err != nil || got != want {
		t.Fatalf("pointer: (%+v, %v)", got, err)
	}
	if got, err := ConfigAs[LGSConfig]("lgs", nil); err != nil || got != (LGSConfig{}) {
		t.Fatalf("nil: (%+v, %v)", got, err)
	}
	if got, err := ConfigAs[LGSConfig]("lgs", (*LGSConfig)(nil)); err != nil || got != (LGSConfig{}) {
		t.Fatalf("typed nil: (%+v, %v)", got, err)
	}
}

func TestThirdPartyBackendRuns(t *testing.T) {
	// A third-party simulator: completes every op instantly at issue time.
	Register(Definition{
		Name: "instant-test",
		New: func(cfg any, env Env) (core.Backend, error) {
			return &instantBackend{}, nil
		},
	})
	res, err := Run(context.Background(), Spec{Workload: Workload{Schedule: micro.Ring(4, 1024)},
		Backend: "instant-test"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Runtime != 0 {
		t.Fatalf("instant backend: ops %d runtime %v, want all ops at time zero", res.Ops, res.Runtime)
	}
}

// instantBackend completes everything immediately; the simplest possible
// honour of the ATLAHS contract.
type instantBackend struct {
	eng  engine.Sim
	over core.CompletionFunc
}

func (b *instantBackend) Name() string { return "instant-test" }
func (b *instantBackend) Setup(nranks int, eng engine.Sim, over core.CompletionFunc) error {
	b.eng, b.over = eng, over
	return nil
}
func (b *instantBackend) Send(ev core.SendEvent) {
	h := ev.Handle
	b.eng.Schedule(b.eng.Now(), func() { b.over(h, b.eng.Now()) })
}
func (b *instantBackend) Recv(ev core.RecvEvent) {
	h := ev.Handle
	b.eng.Schedule(b.eng.Now(), func() { b.over(h, b.eng.Now()) })
}
func (b *instantBackend) Calc(ev core.CalcEvent) {
	h := ev.Handle
	b.eng.Schedule(b.eng.Now(), func() { b.over(h, b.eng.Now()) })
}
