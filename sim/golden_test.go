package sim

import (
	"context"
	"testing"

	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/fluid"
	"atlahs/internal/goal"
	"atlahs/internal/pktnet"
	"atlahs/internal/sched"
	"atlahs/internal/topo"
	"atlahs/internal/workload/micro"
)

// sameAsSched pins a facade Result bit-identical to a hand-wired scheduler
// result: simulated runtime, every rank's completion time, op and event
// counts.
func sameAsSched(t *testing.T, label string, got *Result, want *sched.Result) {
	t.Helper()
	if got.Runtime != want.Runtime {
		t.Fatalf("%s: Runtime %v, want %v", label, got.Runtime, want.Runtime)
	}
	if got.Ops != want.Ops {
		t.Fatalf("%s: Ops %d, want %d", label, got.Ops, want.Ops)
	}
	if got.Events != want.Events {
		t.Fatalf("%s: Events %d, want %d", label, got.Events, want.Events)
	}
	if len(got.RankEnd) != len(want.RankEnd) {
		t.Fatalf("%s: %d ranks, want %d", label, len(got.RankEnd), len(want.RankEnd))
	}
	for r := range got.RankEnd {
		if got.RankEnd[r] != want.RankEnd[r] {
			t.Fatalf("%s: RankEnd[%d] = %v, want %v", label, r, got.RankEnd[r], want.RankEnd[r])
		}
	}
}

// goldenWorkloads are the schedules the facade equivalence suite runs;
// they cover symmetric bulk traffic, rings with carried dependencies,
// seeded irregular traffic with compute, and the rendezvous protocol.
func goldenWorkloads() map[string]*goal.Schedule {
	return map[string]*goal.Schedule{
		"alltoall-16": micro.AllToAll(16, 65536),
		"ring-24":     micro.Ring(24, 4096),
		"bsp-12x4":    micro.BulkSynchronous(12, 4, 32768, 2000),
		"uniform-16":  micro.UniformRandom(16, 200, 8192, 7),
	}
}

// TestGoldenLGSSerial: sim.Run on "lgs" must be bit-identical to the old
// hand-wired sched.Run(engine.New(), ...) path.
func TestGoldenLGSSerial(t *testing.T) {
	for name, s := range goldenWorkloads() {
		for _, params := range []LogGOPS{AIParams(), HPCParams()} {
			want, err := sched.Run(engine.New(), s, backend.NewLGS(params), sched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(context.Background(), Spec{Workload: Workload{Schedule: s},
				Backend: "lgs",
				Config:  LGSConfig{Params: params}})
			if err != nil {
				t.Fatal(err)
			}
			sameAsSched(t, name, got, want)
			if got.Parallel || got.Workers != 1 {
				t.Fatalf("%s: serial spec ran parallel=%v workers=%d", name, got.Parallel, got.Workers)
			}
		}
	}
}

// TestGoldenLGSParallel: sim.Run with Workers=4 must match the old
// sched.RunParallel path bit for bit (which in turn matches serial — the
// engine equivalence suite in internal/backend pins that).
func TestGoldenLGSParallel(t *testing.T) {
	for name, s := range goldenWorkloads() {
		want, err := sched.RunParallel(4, s, backend.NewLGS(AIParams()), sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(context.Background(), Spec{Workload: Workload{Schedule: s},
			Backend: "lgs",
			Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		sameAsSched(t, name, got, want)
		if !got.Parallel || got.Workers != 4 {
			t.Fatalf("%s: want the 4-worker parallel engine, got parallel=%v workers=%d", name, got.Parallel, got.Workers)
		}
	}
}

// TestGoldenPkt: sim.Run on "pkt" with declarative fat-tree sizing must be
// bit-identical to hand-wiring the topology, backend and serial engine.
func TestGoldenPkt(t *testing.T) {
	s := micro.AllToAll(8, 32768)
	tp, err := backend.FatTreeFor(s.NumRanks(), 4, 4, topo.DefaultLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	pb := backend.NewPkt(backend.PktConfig{
		Net:    pktnet.Config{Topo: tp, CC: "mprdma", Seed: 3},
		Params: backend.DefaultNetParams(),
	})
	want, err := sched.Run(engine.New(), s, pb, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), Spec{Workload: Workload{Schedule: s},
		Backend: "pkt",
		Config:  PktConfig{HostsPerToR: 4, Oversub: 1, CC: "mprdma", Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	sameAsSched(t, "pkt alltoall-8", got, want)
	if got.Net == nil {
		t.Fatal("pkt run lost its fabric counters")
	}
	if got.Net.PktsSent == 0 || got.Net.PktsSent != pb.NetStats().PktsSent {
		t.Fatalf("pkt counters diverged: %d vs %d", got.Net.PktsSent, pb.NetStats().PktsSent)
	}
}

// TestGoldenFluid: sim.Run on "fluid" with jitter and overheads must match
// the hand-wired path.
func TestGoldenFluid(t *testing.T) {
	s := micro.BulkSynchronous(8, 3, 32768, 2000)
	tp, err := backend.FatTreeFor(s.NumRanks(), 4, 4, topo.DefaultLinkSpec())
	if err != nil {
		t.Fatal(err)
	}
	fb := backend.NewFluid(backend.FluidConfig{
		Net:    fluid.Config{Topo: tp, Overhead: 1500, JitterFrac: 0.03, Seed: 6},
		Params: backend.DefaultNetParams(),
	})
	want, err := sched.Run(engine.New(), s, fb, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), Spec{Workload: Workload{Schedule: s},
		Backend: "fluid",
		Config: FluidConfig{
			HostsPerToR: 4,
			Oversub:     1,
			Overhead:    1500,
			JitterFrac:  0.03,
			Seed:        6,
		}})
	if err != nil {
		t.Fatal(err)
	}
	sameAsSched(t, "fluid bsp-8x3", got, want)
}
