package sim

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"atlahs/internal/goal"
	"atlahs/internal/workload/micro"
)

func TestSpecRequiresExactlyOneWorkload(t *testing.T) {
	if _, err := Run(context.Background(), Spec{}); err == nil ||
		!strings.Contains(err.Error(), "no workload") {
		t.Fatalf("empty spec: %v", err)
	}
	_, err := Run(context.Background(), Spec{Workload: Workload{Schedule: micro.Ring(2, 64), Synthetic: &Synthetic{Pattern: "ring", Ranks: 2, Bytes: 64}}})
	if err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("two sources: %v", err)
	}
}

// TestWorkloadSourcesAgree: the same schedule through all four sources
// must produce the same result.
func TestWorkloadSourcesAgree(t *testing.T) {
	s := micro.Ring(8, 4096)
	var bin, txt bytes.Buffer
	if err := goal.WriteBinary(&bin, s); err != nil {
		t.Fatal(err)
	}
	if err := goal.WriteText(&txt, s); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	binPath := filepath.Join(dir, "ring.bin")
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	want, err := Run(context.Background(), Spec{Workload: Workload{Schedule: s}})
	if err != nil {
		t.Fatal(err)
	}
	for name, spec := range map[string]Spec{
		"goal-bytes-binary": {Workload: Workload{GoalBytes: bin.Bytes()}},
		"goal-bytes-text":   {Workload: Workload{GoalBytes: txt.Bytes()}},
		"goal-path":         {Workload: Workload{GoalPath: binPath}},
		"synthetic":         {Workload: Workload{Synthetic: &Synthetic{Pattern: "ring", Ranks: 8, Bytes: 4096}}},
	} {
		got, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Runtime != want.Runtime || got.Ops != want.Ops {
			t.Fatalf("%s: (%v, %d ops), want (%v, %d ops)", name, got.Runtime, got.Ops, want.Runtime, want.Ops)
		}
	}
}

func TestSyntheticPatterns(t *testing.T) {
	for _, pattern := range SyntheticPatterns() {
		res, err := Run(context.Background(), Spec{Workload: Workload{Synthetic: &Synthetic{Pattern: pattern, Ranks: 6, Bytes: 1024}},
			Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if res.Ops == 0 {
			t.Fatalf("%s: no ops executed", pattern)
		}
	}
	if _, err := Run(context.Background(), Spec{Workload: Workload{Synthetic: &Synthetic{Pattern: "nope", Ranks: 4}}}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown pattern: %v", err)
	}
}

func TestWorkersRejectedForSharedFabricBackends(t *testing.T) {
	for _, name := range []string{"pkt", "fluid"} {
		_, err := Run(context.Background(), Spec{Workload: Workload{Schedule: micro.Ring(4, 1024)},
			Backend: name,
			Workers: 4})
		if err == nil {
			t.Fatalf("%s with Workers=4: expected rejection, not a silent serial fallback", name)
		}
		if !strings.Contains(err.Error(), name) || !strings.Contains(err.Error(), "parallel") {
			t.Fatalf("%s rejection %q should name the backend and the parallel engine", name, err)
		}
	}
}

func TestOversubscriptionBeyondToRRadixErrors(t *testing.T) {
	_, err := Run(context.Background(), Spec{Workload: Workload{Schedule: micro.Ring(4, 1024)},
		Backend: "pkt",
		Config:  PktConfig{HostsPerToR: 4, Oversub: 8}})
	if err == nil || !strings.Contains(err.Error(), "oversubscription") {
		t.Fatalf("oversub 8 with 4 hosts/ToR: %v, want an oversubscription error, not a clamp", err)
	}
}

// recordingObserver counts callbacks; op-level methods may run
// concurrently under Workers > 1.
type recordingObserver struct {
	mu       sync.Mutex
	started  []RunInfo
	ops      []OpEvent
	progress []ProgressEvent
	net      []NetStats
}

func (r *recordingObserver) RunStarted(info RunInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.started = append(r.started, info)
}
func (r *recordingObserver) OpCompleted(ev OpEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, ev)
}
func (r *recordingObserver) Progress(ev ProgressEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.progress = append(r.progress, ev)
}
func (r *recordingObserver) NetStats(ns NetStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.net = append(r.net, ns)
}

func TestObserverStreamsRun(t *testing.T) {
	s := micro.AllToAll(8, 4096)
	obs := &recordingObserver{}
	res, err := Run(context.Background(), Spec{Workload: Workload{Schedule: s},
		Backend:       "pkt",
		Observer:      obs,
		ProgressEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.started) != 1 {
		t.Fatalf("RunStarted fired %d times", len(obs.started))
	}
	info := obs.started[0]
	if info.Backend != "pkt" || info.Stats.Ranks != 8 || info.Parallel {
		t.Fatalf("RunInfo %+v", info)
	}
	if int64(len(obs.ops)) != res.Ops {
		t.Fatalf("observed %d op completions, result says %d", len(obs.ops), res.Ops)
	}
	wantProgress := int(res.Ops / 10)
	if len(obs.progress) != wantProgress {
		t.Fatalf("observed %d progress events, want %d", len(obs.progress), wantProgress)
	}
	if len(obs.net) != 1 || obs.net[0].PktsSent == 0 {
		t.Fatalf("net stats callbacks %+v", obs.net)
	}
	// Kinds must match the schedule's op mix.
	var sends, recvs int64
	for _, ev := range obs.ops {
		switch ev.Kind {
		case OpSend:
			sends++
		case OpRecv:
			recvs++
		}
	}
	st := s.ComputeStats()
	if sends != st.Sends || recvs != st.Recvs {
		t.Fatalf("observed %d sends / %d recvs, schedule has %d / %d", sends, recvs, st.Sends, st.Recvs)
	}
}

// TestObserverDoesNotPerturbResult: runs with and without an observer must
// be bit-identical.
func TestObserverDoesNotPerturbResult(t *testing.T) {
	s := micro.BulkSynchronous(8, 4, 16384, 1500)
	plain, err := Run(context.Background(), Spec{Workload: Workload{Schedule: s},
		Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(context.Background(), Spec{Workload: Workload{Schedule: s},
		Workers:  4,
		Observer: &recordingObserver{}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Runtime != observed.Runtime || plain.Events != observed.Events {
		t.Fatalf("observer changed the simulation: (%v, %d) vs (%v, %d)",
			observed.Runtime, observed.Events, plain.Runtime, plain.Events)
	}
}

func TestRunHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Spec{Workload: Workload{Schedule: micro.Ring(4, 1024)}})
	if err != context.Canceled {
		t.Fatalf("pre-cancelled ctx: %v, want context.Canceled", err)
	}
}

// cancelAfter cancels its context after n op completions.
type cancelAfter struct {
	NopObserver
	n      int64
	seen   int64
	cancel context.CancelFunc
	mu     sync.Mutex
}

func (c *cancelAfter) OpCompleted(OpEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

func TestRunCancelsMidSimulation(t *testing.T) {
	// Enough ops that the 1024-completion ctx poll triggers well before the
	// end: 64 ranks all-to-all is ~8k ops.
	s := micro.AllToAll(64, 1024)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, Spec{Workload: Workload{Schedule: s},
		Observer: &cancelAfter{n: 100, cancel: cancel}})
	if err != context.Canceled {
		t.Fatalf("mid-run cancel: %v, want context.Canceled", err)
	}
}
