package sim

import (
	"atlahs/internal/engine"
	"atlahs/internal/sched"
	"atlahs/internal/telemetry"
	"atlahs/results"
)

// Timeline is a bounded, concurrency-safe run-timeline recorder whose
// Encode emits Chrome trace-event JSON loadable in Perfetto
// (ui.perfetto.dev). Attach one via Spec.Timeline; timestamps are
// simulated time, so the document is deterministic for a deterministic
// run. The alias re-exports internal/telemetry's recorder so callers
// outside the module can construct and drain one.
type Timeline = telemetry.Timeline

// NewTimeline returns a timeline recorder bounded to maxEvents recorded
// events (<= 0 selects the default bound); events past the bound are
// dropped and counted in the encoded document.
func NewTimeline(maxEvents int) *Timeline { return telemetry.NewTimeline(maxEvents) }

// runMetrics folds the engine's and the scheduler's execution counters
// into the run's atlahs.metrics/v1 snapshot. Window counts and
// scheduler depths are deterministic for a given spec; the
// execution-strategy counters (inline vs dispatched windows, worker
// wakeups) describe how this process ran the windows and follow the
// worker budget.
func runMetrics(eng engine.Sim, res *sched.Result) *results.MetricsSnapshot {
	var st engine.RunStats
	switch e := eng.(type) {
	case *engine.Engine:
		st = e.Stats()
	case *engine.ParEngine:
		st = e.Stats()
	}
	reg := telemetry.NewRegistry()
	reg.Counter("atlahs_engine_events_total", "engine events executed").Add(st.Events)
	reg.Gauge("atlahs_engine_peak_pending", "high-water mark of queued engine events").Set(int64(st.PeakPending))
	reg.Counter("atlahs_engine_windows_total", "conservative windows executed (parallel engine)").Add(st.Windows)
	reg.Counter("atlahs_engine_windows_widened_total", "windows the adaptive mode widened past the fixed lookahead bound").Add(st.WidenedWindows)
	reg.Counter("atlahs_engine_windows_inline_total", "windows run inline on the coordinator").Add(st.InlineWindows)
	reg.Counter("atlahs_engine_windows_dispatched_total", "windows dispatched to the worker pool").Add(st.DispatchedWindows)
	reg.Counter("atlahs_engine_worker_wakeups_total", "worker wakeups across dispatched windows").Add(st.WorkerWakeups)
	reg.Counter("atlahs_engine_active_lanes_total", "active-lane count summed over windows").Add(st.ActiveLanes)
	reg.Gauge("atlahs_engine_active_lanes_max", "largest single-window active-lane count").Set(int64(st.MaxActiveLanes))
	reg.Gauge("atlahs_sched_peak_outstanding", "peak simultaneously in-flight ops on any single rank").Set(int64(res.PeakOutstanding))
	reg.Gauge("atlahs_sched_heap_reserved", "event-heap capacity pre-sized from the schedule").Set(int64(res.HeapReserved))
	return results.MetricsFromPoints(reg.Snapshot())
}
