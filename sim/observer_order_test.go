package sim

import (
	"context"
	"sync"
	"testing"

	"atlahs/internal/workload/micro"
)

// orderingObserver records the interleaved callback stream as one ordered
// log. Op-level callbacks arrive concurrently under Workers > 1, so every
// append holds the mutex — the recorded order is the order callbacks
// actually happened-before each other.
type orderingObserver struct {
	mu       sync.Mutex
	kinds    []string // "started", "op", "progress" in arrival order
	tally    Tally
	netCalls int
}

func (o *orderingObserver) RunStarted(RunInfo) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.kinds = append(o.kinds, "started")
}

func (o *orderingObserver) OpCompleted(ev OpEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.kinds = append(o.kinds, "op")
	switch ev.Kind {
	case OpCalc:
		o.tally.Calcs++
	case OpSend:
		o.tally.Sends++
	case OpRecv:
		o.tally.Recvs++
	}
}

func (o *orderingObserver) Progress(ProgressEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.kinds = append(o.kinds, "progress")
}

func (o *orderingObserver) NetStats(NetStats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.netCalls++
}

// TestObserverEventOrdering pins the stream contract the service's SSE
// bridge relies on, at 1 worker and on the sharded engine at 4 workers:
// RunStarted fires exactly once and strictly before the first Progress
// (and before any op completion), and the OpCompleted tallies equal
// Result.Done — every executed op is observed exactly once, regardless of
// worker count.
func TestObserverEventOrdering(t *testing.T) {
	s := micro.BulkSynchronous(8, 4, 16384, 1500)
	for _, workers := range []int{1, 4} {
		obs := &orderingObserver{}
		res, err := Run(context.Background(), Spec{Workload: Workload{Schedule: s},
			Workers:       workers,
			Observer:      obs,
			ProgressEvery: 7})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers > 1 && !res.Parallel {
			t.Fatalf("workers=%d did not engage the parallel engine", workers)
		}
		var started, firstProgress, firstOp int = -1, -1, -1
		startedCount := 0
		for i, k := range obs.kinds {
			switch k {
			case "started":
				startedCount++
				if started == -1 {
					started = i
				}
			case "progress":
				if firstProgress == -1 {
					firstProgress = i
				}
			case "op":
				if firstOp == -1 {
					firstOp = i
				}
			}
		}
		if startedCount != 1 {
			t.Fatalf("workers=%d: RunStarted fired %d times", workers, startedCount)
		}
		if started != 0 {
			t.Fatalf("workers=%d: RunStarted at position %d, want 0 (before every other event)", workers, started)
		}
		if firstProgress != -1 && firstProgress < started {
			t.Fatalf("workers=%d: Progress at %d precedes RunStarted at %d", workers, firstProgress, started)
		}
		if firstOp != -1 && firstOp < started {
			t.Fatalf("workers=%d: OpCompleted at %d precedes RunStarted at %d", workers, firstOp, started)
		}
		if firstProgress == -1 {
			t.Fatalf("workers=%d: no Progress events despite ProgressEvery", workers)
		}
		if obs.tally != res.Done {
			t.Fatalf("workers=%d: observed tallies %+v, Result.Done %+v", workers, obs.tally, res.Done)
		}
		if got := obs.tally.Total(); got != res.Ops {
			t.Fatalf("workers=%d: observed %d op completions, result says %d", workers, got, res.Ops)
		}
	}
}
