package sim

import "atlahs/internal/pktnet"

// RunInfo describes a run as it starts, after the workload and backend are
// resolved.
type RunInfo struct {
	// Backend is the resolved backend name.
	Backend string
	// Stats is the schedule's size accounting (ranks, ops, bytes on the
	// wire, ...).
	Stats ScheduleStats
	// Workers is the resolved worker count (1 when running serially).
	Workers int
	// Parallel reports whether the run executes on the sharded parallel
	// engine.
	Parallel bool
}

// OpEvent reports one GOAL op's semantic completion.
type OpEvent struct {
	// Rank and Op locate the op in the schedule.
	Rank int
	Op   int32
	// Kind is the op's kind (calc, send, recv).
	Kind OpKind
	// At is the simulated completion time.
	At Time
}

// ProgressEvent is the periodic progress callback (every
// Spec.ProgressEvery completed ops).
type ProgressEvent struct {
	// Done and Total count completed and scheduled ops.
	Done, Total int64
	// At is the simulated time of the completion that triggered the event.
	At Time
}

// NetStats are the packet-level fabric counters (data packets, drops,
// trims, retransmits, ...), reported by backends that track them (pkt).
// Message-level and fluid backends have none — exactly the fidelity trade
// the paper's Fig 12 makes.
type NetStats = pktnet.Stats

// Observer receives streaming callbacks from a run, replacing ad-hoc
// printing: commands and services render op completions, progress and
// network counters however they like. With Spec.Workers > 1, OpCompleted
// and Progress are invoked concurrently from engine worker goroutines;
// implementations must be safe for concurrent use. All callbacks happen
// before Run returns. Embed NopObserver to implement only the methods you
// care about.
type Observer interface {
	// RunStarted fires once, before the first event executes.
	RunStarted(RunInfo)
	// OpCompleted fires for every GOAL op at its semantic completion.
	OpCompleted(OpEvent)
	// Progress fires every Spec.ProgressEvery completed ops (never when
	// ProgressEvery is 0).
	Progress(ProgressEvent)
	// NetStats fires once after the run for backends with fabric counters.
	NetStats(NetStats)
}

// NopObserver implements Observer with no-ops, for embedding.
type NopObserver struct{}

// RunStarted implements Observer.
func (NopObserver) RunStarted(RunInfo) {}

// OpCompleted implements Observer.
func (NopObserver) OpCompleted(OpEvent) {}

// Progress implements Observer.
func (NopObserver) Progress(ProgressEvent) {}

// NetStats implements Observer.
func (NopObserver) NetStats(NetStats) {}
