package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzSpecRoundTrip hardens the spec codec the way the GOAL fuzzers harden
// the schedule codecs: arbitrary bytes must unmarshal-or-fail cleanly — no
// panics, no over-allocation — and any spec the decoder accepts must
// survive an unmarshal -> marshal -> unmarshal round trip with the two
// decoded specs DeepEqual and the re-encoding byte-stable (one canonical
// encoding per spec). The seed corpus holds one wire spec per built-in
// backend and per built-in frontend (codecSpecs), a multi-job composition,
// and the malformed shapes the error tests cover.
func FuzzSpecRoundTrip(f *testing.F) {
	for _, spec := range codecSpecs() {
		b, err := MarshalSpec(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	for _, raw := range []string{
		`{"schema":"atlahs.spec/v1","synthetic":{"pattern":"ring","ranks":2}}`,
		`{"schema":"atlahs.spec/v2"}`,
		`{"schema":"atlahs.spec/v1","backend":"nosim"}`,
		`{"schema":"atlahs.spec/v1","schedule":"bm90IGdvYWw="}`,
		`{"schema":"atlahs.spec/v1","jobs":[{}],"placement":"diagonal"}`,
		`{"schema":"atlahs.spec/v1","synthetic":{"pattern":"ring","ranks":2},"config":{"Params":{}}}`,
		`not json at all`,
	} {
		f.Add([]byte(raw))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		u1, err := UnmarshalSpec(raw)
		if err != nil {
			return // rejected inputs just need to fail cleanly
		}
		m1, err := MarshalSpec(u1)
		if err != nil {
			t.Fatalf("MarshalSpec failed on accepted spec: %v", err)
		}
		u2, err := UnmarshalSpec(m1)
		if err != nil {
			t.Fatalf("round trip rejected:\n%s\nerror: %v", m1, err)
		}
		if !reflect.DeepEqual(u1, u2) {
			t.Fatalf("round trip changed the spec:\nfirst:  %+v\nsecond: %+v", u1, u2)
		}
		m2, err := MarshalSpec(u2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("encoding not canonical:\nfirst:\n%s\nsecond:\n%s", m1, m2)
		}
	})
}
