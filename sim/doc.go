// Package sim is the public facade of the ATLAHS toolchain: the one way to
// run a simulation. A declarative Spec names the workload (a GOAL schedule
// from a file, raw bytes, an in-memory schedule, or a synthetic traffic
// generator), the backend (resolved through a registry that third-party
// simulators can join via Register), and the execution knobs (worker
// budget, calc scaling, seed). Run executes the spec, picking the serial or
// sharded parallel engine from the backend's declared lookahead, streams op
// completions, periodic progress and backend network counters to an
// optional Observer, and returns a typed Result: makespan, per-rank
// completion times, the schedule's size accounting, executed-op tallies and
// the backend's fabric counters when it tracks them. Everything in a Result
// except the Wall measurement is deterministic — independent of worker
// count and host conditions — so results can be exported (see the results
// package) and compared across runs.
//
// The layering is strict: sim (this package, the entry point) sits on
// internal/sched (the GOAL dependency scheduler), which drives any
// internal/core.Backend, which schedules its events on internal/engine (the
// serial and parallel discrete-event cores). Commands and examples program
// exclusively against sim; nothing above this package touches the scheduler
// or engines directly (CI enforces the boundary).
//
// Minimal use:
//
//	res, err := sim.Run(ctx, sim.Spec{
//		Synthetic: &sim.Synthetic{Pattern: "alltoall", Ranks: 64, Bytes: 1 << 16},
//		Backend:   "lgs",
//		Workers:   4,
//	})
//
// Any simulator honouring the ATLAHS backend contract (paper Fig 7) can be
// plugged in behind the same schedule:
//
//	sim.Register(sim.Definition{Name: "mysim", New: newMySim})
//	res, err := sim.Run(ctx, sim.Spec{GoalPath: "trace.bin", Backend: "mysim"})
package sim
