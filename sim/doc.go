// Package sim is the public facade of the ATLAHS toolchain: the one way to
// run a simulation. A declarative Spec names the workload, the backend
// (resolved through a registry that third-party simulators can join via
// Register), and the execution knobs (worker budget, calc scaling, seed).
// Run executes the spec, picking the serial or sharded parallel engine
// from the backend's declared lookahead, streams op completions, periodic
// progress and backend network counters to an optional Observer, and
// returns a typed Result: makespan, per-rank completion times, the
// schedule's size accounting, executed-op tallies and the backend's fabric
// counters when it tracks them. Everything in a Result except the Wall
// measurement is deterministic — independent of worker count and host
// conditions — so results can be exported (see the results package) and
// compared across runs.
//
// Workloads enter through three symmetric registries, declared on one
// shared Workload struct (embedded by Spec and JobSpec, so the fields
// read as each spec's own and single and composed workloads validate and
// resolve through one path). On the ingestion side, the workload-frontend
// registry (RegisterFrontend) is the boundary where application traces
// meet the GOAL intermediate representation: a Spec may name a
// pre-converted GOAL schedule (GoalPath, GoalBytes, Schedule), a
// synthetic traffic generator (Synthetic), a raw application trace
// (TracePath, Trace) that a registered frontend converts on the fly, or a
// statistical workload model (Model, ModelPath) sampled into a schedule
// at resolution time. The built-in frontends are "nsys" (GPU reports
// through the 4-stage NCCL pipeline), "mpi" (liballprof-style traces
// through Schedgen), "spc" (block-I/O traces through the Direct Drive
// model), "chakra" (AstraSim's execution traces), and "goal" (the GOAL
// codecs themselves). The format is sniffed from the content with the
// file extension as fallback, or named explicitly via Spec.Frontend;
// per-frontend conversion knobs ride in Spec.FrontendConfig. On the
// generation side, the generator registry (RegisterGenerator) resolves
// Synthetic.Pattern by name — the built-in patterns ("ring", "alltoall",
// "incast", "permutation", "uniform", "bsp") self-register, as does the
// "model" generator behind the model workload source — so third-party
// traffic patterns plug in exactly like third-party frontends. On the
// backend side, the registry built in PR 2 resolves Spec.Backend ("lgs",
// "pkt", "fluid", or third-party).
//
// Workload synthesis closes the loop between ingestion and generation:
// MineModel walks any resolved schedule — a converted trace, a loaded
// GOAL file, a generated pattern — and extracts a statistical model
// (message-size and per-rank message-count distributions, compute/
// communication structure, traffic classes with destination-offset
// histograms, and the dependency-depth profile), serialised under the
// append-only atlahs.model/v1 schema (EncodeModel/DecodeModel; the
// concrete types live in the results package). GenerateFromModel — or a
// Spec with Model/ModelPath set — samples a model back into a schedule at
// an arbitrary rank count, deterministically for (model, ranks, seed), so
// an 8-rank instrumented run can drive simulations at 100k ranks and the
// generated workloads stay content-addressable (Fingerprint hashes the
// resolved schedule, so the service's run cache answers repeated model
// runs without simulating). cmd/atlahs-synth is the CLI over the same
// pair (`mine`, `gen`).
//
// Multi-job scenarios compose at the same boundary: Spec.Jobs declares N
// independently-sourced workloads (each resolved exactly like a
// single-workload Spec), Spec.Placement lays them out on one shared
// fabric ("packed" or "interleaved"), and the merged schedule runs as one
// simulation with per-job node sets reported in Result.JobNodes — the
// paper's heterogeneous co-location scenarios (§3.2) as a one-spec run.
//
// Every run is observable without being instrumented by its caller:
// Result.Metrics carries an atlahs.metrics/v1 snapshot (see the results
// package) of the engine's and scheduler's execution counters —
// conservative windows, adaptive widenings, peak queue depths, worker
// wakeups — and Spec.Timeline optionally attaches a bounded recorder
// (NewTimeline) that captures op completions and per-lane window spans
// as Chrome trace-event JSON loadable in Perfetto. Timeline timestamps
// are simulated time, so the recorded document is as deterministic as
// the run itself. Like Observer, a Timeline is a process-local hook:
// MarshalSpec rejects specs carrying one, and neither participates in
// Fingerprint.
//
// Specs also cross process boundaries: MarshalSpec/UnmarshalSpec give
// every Spec a canonical wire form under the append-only atlahs.spec/v1
// schema (config payloads resolved by backend/frontend name through the
// registries' NewConfig hooks), Validate rejects invalid specs with the
// same error text at every entry point, and Fingerprint assigns each
// spec a content address — equal fingerprints imply bit-identical
// Results, the property the simulation service's run cache is built on.
//
// The layering is strict: internal/service (the resident simulation
// server behind atlahsd — content-addressed run cache, bounded job
// queue, event streaming over HTTP) sits on sim; sim (this package, the
// entry point) sits on internal/trace/frontend (the ingestion registry
// the trace converters self-register into) and internal/sched (the GOAL
// dependency scheduler), which drives any internal/core.Backend, which
// schedules its events on internal/engine (the serial and parallel
// discrete-event cores). Commands and examples program exclusively
// against sim (or internal/service above it); nothing above this package
// touches the scheduler, the engines, or the trace converters directly
// (CI enforces both boundaries).
//
// Minimal use:
//
//	res, err := sim.Run(ctx, sim.Spec{
//		Workload: sim.Workload{Synthetic: &sim.Synthetic{Pattern: "alltoall", Ranks: 64, Bytes: 1 << 16}},
//		Backend:  "lgs",
//		Workers:  4,
//	})
//
// Direct trace replay, model-based synthesis and scenario composition:
//
//	res, err := sim.Run(ctx, sim.Spec{Workload: sim.Workload{TracePath: "run.nsys"}}) // sniffed, NCCL pipeline
//	res, err := sim.Run(ctx, sim.Spec{
//		Workload: sim.Workload{Model: &sim.ModelGen{Ranks: 4096, Doc: modelDoc}}, // mined once, scaled up
//	})
//	res, err := sim.Run(ctx, sim.Spec{
//		Jobs: []sim.JobSpec{
//			{Workload: sim.Workload{TracePath: "train.nsys", FrontendConfig: sim.NsysConfig{GPUsPerNode: 4}}},
//			{Workload: sim.Workload{TracePath: "stencil.mpi"}},
//			{Workload: sim.Workload{ModelPath: "checkpoint.model.json"}},
//		},
//		Placement: "interleaved",
//		Backend:   "pkt",
//	})
//
// Any simulator honouring the ATLAHS backend contract (paper Fig 7) can be
// plugged in behind the same schedule, and any trace format or traffic
// pattern can be plugged in ahead of it:
//
//	sim.Register(sim.Definition{Name: "mysim", New: newMySim})
//	sim.RegisterFrontend(sim.Frontend{Name: "myfmt", Sniff: sniff, Convert: convert})
//	sim.RegisterGenerator(sim.GeneratorDef{Name: "mypattern", New: genMyPattern})
//	res, err := sim.Run(ctx, sim.Spec{
//		Workload: sim.Workload{TracePath: "run.myfmt"},
//		Backend:  "mysim",
//	})
package sim
