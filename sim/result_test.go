package sim

import (
	"context"
	"reflect"
	"testing"
)

// resultSpec builds a small multi-rank workload every backend can run.
func resultSpec(backendName string) Spec {
	return Spec{Workload: Workload{Synthetic: &Synthetic{Pattern: "alltoall", Ranks: 8, Bytes: 4096}},
		Backend: backendName}
}

// TestResultPopulationPerBackend: every built-in backend must return a
// fully populated Result — non-zero makespan, run metadata, schedule
// accounting, and op tallies that match the schedule exactly. The list is
// spelled out (rather than ranging over Backends()) because other tests
// register throwaway definitions in the shared registry.
func TestResultPopulationPerBackend(t *testing.T) {
	for _, name := range []string{"lgs", "pkt", "fluid"} {
		if _, ok := Lookup(name); !ok {
			t.Fatalf("built-in backend %q not registered", name)
		}
		t.Run(name, func(t *testing.T) {
			res, err := Run(context.Background(), resultSpec(name))
			if err != nil {
				t.Fatal(err)
			}
			if res.Runtime <= 0 {
				t.Errorf("makespan %v not positive", res.Runtime)
			}
			if res.Backend != name {
				t.Errorf("Backend = %q, want %q", res.Backend, name)
			}
			if res.Ranks != 8 || res.Sched.Ranks != 8 || len(res.RankEnd) != 8 {
				t.Errorf("rank accounting: Ranks=%d Sched.Ranks=%d len(RankEnd)=%d, want 8",
					res.Ranks, res.Sched.Ranks, len(res.RankEnd))
			}
			if res.Events == 0 {
				t.Error("Events = 0")
			}
			if res.Workers != 1 || res.Parallel {
				t.Errorf("serial run reported Workers=%d Parallel=%v", res.Workers, res.Parallel)
			}
			if res.Ops != res.Sched.Ops || res.Done.Total() != res.Sched.Ops {
				t.Errorf("op accounting: Ops=%d Done.Total()=%d, want Sched.Ops=%d",
					res.Ops, res.Done.Total(), res.Sched.Ops)
			}
			want := Tally{Calcs: res.Sched.Calcs, Sends: res.Sched.Sends, Recvs: res.Sched.Recvs}
			if res.Done != want {
				t.Errorf("Done = %+v, want schedule tallies %+v", res.Done, want)
			}
			if gotNet := res.Net != nil; gotNet != (name == "pkt") {
				t.Errorf("Net != nil is %v for backend %q", gotNet, name)
			}
			for r, end := range res.RankEnd {
				if end <= 0 {
					t.Errorf("rank %d end time %v not positive", r, end)
				}
			}
		})
	}
}

// TestResultTalliesSerialVsParallel: the parallel engine must report the
// same Result as the serial engine — same makespan, rank ends, and op
// tallies — with only the engine metadata differing.
func TestResultTalliesSerialVsParallel(t *testing.T) {
	mk := func(workers int) Spec {
		return Spec{Workload: Workload{Synthetic: &Synthetic{Pattern: "bsp", Ranks: 16, Bytes: 65536, Phases: 5, CalcNanos: 2000}},
			Backend: "lgs",
			Workers: workers}
	}
	serial, err := Run(context.Background(), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if !parallel.Parallel || parallel.Workers != 4 {
		t.Fatalf("parallel run reported Workers=%d Parallel=%v", parallel.Workers, parallel.Parallel)
	}
	if serial.Runtime != parallel.Runtime {
		t.Errorf("makespan diverged: serial %v vs parallel %v", serial.Runtime, parallel.Runtime)
	}
	if !reflect.DeepEqual(serial.RankEnd, parallel.RankEnd) {
		t.Errorf("RankEnd diverged:\nserial:   %v\nparallel: %v", serial.RankEnd, parallel.RankEnd)
	}
	if serial.Done != parallel.Done {
		t.Errorf("op tallies diverged: serial %+v vs parallel %+v", serial.Done, parallel.Done)
	}
	if serial.Ops != parallel.Ops || serial.Sched != parallel.Sched {
		t.Errorf("schedule accounting diverged: serial Ops=%d %+v vs parallel Ops=%d %+v",
			serial.Ops, serial.Sched, parallel.Ops, parallel.Sched)
	}
	if serial.Done.Total() != serial.Sched.Ops {
		t.Errorf("Done.Total()=%d, want Sched.Ops=%d", serial.Done.Total(), serial.Sched.Ops)
	}
}
