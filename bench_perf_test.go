// Paired perf benchmarks for the allocation-lean hot path work: each
// benchmark pins one before/after pair (PR 5 cold-vs-hit style) so
// BENCH_ci.json records both sides of the trade and the analyze gate can
// watch them drift. The shared workload is a 64-rank, multi-hundred-
// thousand-op seeded schedule — big enough that allocation and barrier
// behaviour dominate, small enough for bench-smoke's -benchtime 3x.
package atlahs

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"atlahs/internal/backend"
	"atlahs/internal/engine"
	"atlahs/internal/goal"
	"atlahs/internal/sched"
	"atlahs/internal/workload/micro"
	"atlahs/sim"
)

// perfWorkload is the shared large schedule plus its binary encoding,
// built once (80k messages -> 240k ops over 64 ranks, chain-heavy like
// trace-converted GOAL).
var perfWorkload = sync.OnceValue(func() (w struct {
	s   *goal.Schedule
	ops int64
	enc []byte
}) {
	w.s = micro.UniformRandom(64, 80_000, 4096, 7)
	w.ops = w.s.ComputeStats().Ops
	var buf bytes.Buffer
	if err := goal.WriteBinary(&buf, w.s); err != nil {
		panic(err)
	}
	w.enc = buf.Bytes()
	return w
})

// BenchmarkAdaptiveVsFixedWindow pairs the two ParEngine windowing modes
// (plus the serial baseline) on the shared schedule: same events, same
// results — adaptive should spend fewer barriers on the sparse stretches
// seeded point-to-point traffic produces.
func BenchmarkAdaptiveVsFixedWindow(b *testing.B) {
	w := perfWorkload()
	run := func(b *testing.B, mk func(be *backend.LGS) engine.Sim) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			be := backend.NewLGS(backend.AIParams())
			res, err := sched.Run(mk(be), w.s, be, sched.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Ops != w.ops {
				b.Fatal("incomplete run")
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		run(b, func(be *backend.LGS) engine.Sim { return engine.New() })
	})
	b.Run("fixed-w4", func(b *testing.B) {
		run(b, func(be *backend.LGS) engine.Sim {
			eng := engine.NewParallel(w.s.NumRanks(), 4, be.Lookahead())
			eng.SetAdaptive(false)
			return eng
		})
	})
	b.Run("adaptive-w4", func(b *testing.B) {
		run(b, func(be *backend.LGS) engine.Sim {
			return engine.NewParallel(w.s.NumRanks(), 4, be.Lookahead())
		})
	})
}

// BenchmarkGoalDecodeReaderVsZeroCopy pairs the two binary-GOAL decoders
// on the same encoded bytes: the buffered streaming reader versus the
// zero-copy in-memory parse (exact-sized ops and dependency arenas).
func BenchmarkGoalDecodeReaderVsZeroCopy(b *testing.B) {
	w := perfWorkload()
	b.Run("reader", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(w.enc)))
		for i := 0; i < b.N; i++ {
			s, err := goal.ReadBinary(bytes.NewReader(w.enc))
			if err != nil {
				b.Fatal(err)
			}
			if int64(s.ComputeStats().Ops) != w.ops {
				b.Fatal("short decode")
			}
		}
	})
	b.Run("zerocopy", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(w.enc)))
		for i := 0; i < b.N; i++ {
			s, err := goal.ParseBinary(w.enc)
			if err != nil {
				b.Fatal(err)
			}
			if int64(s.ComputeStats().Ops) != w.ops {
				b.Fatal("short decode")
			}
		}
	})
}

// scatterLayout deep-copies a schedule into the pre-arena dependency
// layout: one heap allocation per non-empty dependency list, the way
// every decoder and builder produced schedules before the shared-arena
// refactor.
func scatterLayout(s *goal.Schedule) *goal.Schedule {
	out := &goal.Schedule{Comment: s.Comment, Ranks: make([]goal.RankProgram, len(s.Ranks))}
	scatter := func(deps [][]int32) [][]int32 {
		c := make([][]int32, len(deps))
		for i, d := range deps {
			if len(d) > 0 {
				c[i] = append([]int32(nil), d...)
			}
		}
		return c
	}
	for r := range s.Ranks {
		rp := &s.Ranks[r]
		o := &out.Ranks[r]
		o.Ops = append([]goal.Op(nil), rp.Ops...)
		o.Requires = scatter(rp.Requires)
		o.IRequires = scatter(rp.IRequires)
	}
	return out
}

// BenchmarkDepLayoutScatteredVsArena pairs the two dependency-storage
// layouts through a full scheduler run: the same schedule once with
// per-op dependency slices (the old layout) and once arena-backed. The
// simulation itself is identical; the delta is allocation count, GC scan
// work and dependency-walk locality.
func BenchmarkDepLayoutScatteredVsArena(b *testing.B) {
	w := perfWorkload()
	scattered := scatterLayout(w.s)
	run := func(b *testing.B, s *goal.Schedule) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			be := backend.NewLGS(backend.AIParams())
			res, err := sched.Run(engine.New(), s, be, sched.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Ops != w.ops {
				b.Fatal("incomplete run")
			}
		}
	}
	b.Run("scattered", func(b *testing.B) { run(b, scattered) })
	b.Run("arena", func(b *testing.B) { run(b, w.s) })
}

// BenchmarkTelemetryOffVsOn pairs the observability tax: the shared
// schedule through the sim facade with telemetry off (the default — the
// per-run metrics snapshot is always assembled, so "off" carries it)
// versus with a timeline recorder attached, which touches every op
// completion and every parallel window. The off side must stay on the
// allocation-lean hot path; the on side bounds what -timeline and the
// service's trace recording cost.
func BenchmarkTelemetryOffVsOn(b *testing.B) {
	w := perfWorkload()
	base := sim.Spec{Workload: sim.Workload{Schedule: w.s}, Backend: "lgs", Workers: 4}
	run := func(b *testing.B, tl *sim.Timeline) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spec := base
			if tl != nil {
				tl.Reset()
				spec.Timeline = tl
			}
			res, err := sim.Run(context.Background(), spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Ops != w.ops {
				b.Fatal("incomplete run")
			}
			if tl != nil && tl.Dropped() > 0 {
				b.Fatal("timeline recorder overflowed; raise the benchmark's event bound")
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("timeline", func(b *testing.B) { run(b, sim.NewTimeline(1<<20)) })
}
