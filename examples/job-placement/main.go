// Job placement case study (paper §6.3): an AI job and an HPC job share an
// oversubscribed cluster; packed allocation keeps traffic ToR-local while
// interleaved allocation drags every job's rings through the core.
//
// Both jobs are declared as raw traces in one spec — the facade's
// multi-job composition ingests each through its workload frontend
// ("nsys" and "mpi", sniffed), lays the jobs out with the placement
// policy, and runs the merged schedule as one simulation; per-job node
// sets come back in Result.JobNodes.
//
//	go run ./examples/job-placement
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"atlahs/internal/simtime"
	"atlahs/internal/workload/hpcapps"
	"atlahs/internal/workload/llm"
	"atlahs/sim"
)

func main() {
	ctx := context.Background()
	// job A: data-parallel Llama training on 4 nodes (16 GPUs)
	rep, err := llm.Generate(llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 1, DP: 16, EP: 1, GlobalBatch: 32},
		Scale: 1e-4,
		Seed:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	var llamaTrace bytes.Buffer
	if _, err := rep.WriteTo(&llamaTrace); err != nil {
		log.Fatal(err)
	}
	// job B: LULESH on 4 nodes
	tr, err := hpcapps.Generate(hpcapps.Config{App: hpcapps.LULESH, Ranks: 4, Steps: 3, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	var luleshTrace bytes.Buffer
	if _, err := tr.WriteTo(&luleshTrace); err != nil {
		log.Fatal(err)
	}

	jobs := []sim.JobSpec{
		{Workload: sim.Workload{Trace: llamaTrace.Bytes(), FrontendConfig: sim.NsysConfig{GPUsPerNode: 4}}},
		{Workload: sim.Workload{Trace: luleshTrace.Bytes()}},
	}

	first := true
	for _, placement := range []string{"packed", "interleaved"} {
		res, err := sim.Run(ctx, sim.Spec{
			Jobs:      jobs,
			Placement: placement,
			Backend:   "pkt",
			Config:    sim.PktConfig{HostsPerToR: 4, Cores: 1, CC: "mprdma", Seed: 9},
		})
		if err != nil {
			log.Fatal(err)
		}
		if first {
			fmt.Printf("cluster: %d nodes (4:1 oversubscribed); Llama on %d, LULESH on %d\n\n",
				res.Ranks, len(res.JobNodes[0]), len(res.JobNodes[1]))
			first = false
		}
		jobEnd := func(nodes []int) simtime.Duration {
			var max simtime.Time
			for _, nd := range nodes {
				if res.RankEnd[nd] > max {
					max = res.RankEnd[nd]
				}
			}
			return simtime.Duration(max)
		}
		fmt.Printf("%-11s allocation: Llama %v on nodes %v\n", placement, jobEnd(res.JobNodes[0]), res.JobNodes[0])
		fmt.Printf("%22s LULESH %v on nodes %v\n", "", jobEnd(res.JobNodes[1]), res.JobNodes[1])
	}
}
