// Job placement case study (paper §6.3): an AI job and an HPC job share an
// oversubscribed cluster; packed allocation keeps traffic ToR-local while
// random allocation drags it through the core.
//
//	go run ./examples/job-placement
package main

import (
	"context"
	"fmt"
	"log"

	"atlahs/internal/placement"
	"atlahs/internal/simtime"
	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/trace/schedgen"
	"atlahs/internal/workload/hpcapps"
	"atlahs/internal/workload/llm"
	"atlahs/sim"
)

func main() {
	ctx := context.Background()
	// job A: data-parallel Llama training on 4 nodes (16 GPUs)
	rep, err := llm.Generate(llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 1, DP: 16, EP: 1, GlobalBatch: 32},
		Scale: 1e-4,
		Seed:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	llama, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: 4})
	if err != nil {
		log.Fatal(err)
	}
	// job B: LULESH on 4 nodes
	tr, err := hpcapps.Generate(hpcapps.Config{App: hpcapps.LULESH, Ranks: 4, Steps: 3, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	lulesh, err := schedgen.Generate(tr, schedgen.Options{})
	if err != nil {
		log.Fatal(err)
	}

	cluster := llama.NumRanks() + lulesh.NumRanks()
	fmt.Printf("cluster: %d nodes (4:1 oversubscribed); Llama on %d, LULESH on %d\n\n",
		cluster, llama.NumRanks(), lulesh.NumRanks())

	for _, strat := range []placement.Strategy{placement.Packed, placement.RandomStrat} {
		sets, err := placement.SplitCluster(cluster, []int{llama.NumRanks(), lulesh.NumRanks()}, strat, 13)
		if err != nil {
			log.Fatal(err)
		}
		merged, err := placement.Merge(cluster,
			placement.Job{Sched: llama, Nodes: sets[0]},
			placement.Job{Sched: lulesh, Nodes: sets[1]},
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(ctx, sim.Spec{
			Schedule: merged,
			Backend:  "pkt",
			Config:   sim.PktConfig{HostsPerToR: 4, Cores: 1, CC: "mprdma", Seed: 9},
		})
		if err != nil {
			log.Fatal(err)
		}
		jobEnd := func(nodes []int) simtime.Duration {
			var max simtime.Time
			for _, nd := range nodes {
				if res.RankEnd[nd] > max {
					max = res.RankEnd[nd]
				}
			}
			return simtime.Duration(max)
		}
		fmt.Printf("%-8s allocation: Llama %v on nodes %v\n", strat, jobEnd(sets[0]), sets[0])
		fmt.Printf("%19s LULESH %v on nodes %v\n", "", jobEnd(sets[1]), sets[1])
	}
}
