// Quickstart: build a GOAL schedule with the facade's builder API, run it
// on the LogGOPS message-level backend, and print the simulated runtime.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"atlahs/sim"
)

func main() {
	// The schedule of paper Fig 3, extended into a 2-rank exchange:
	// rank 0 computes on two parallel streams, then sends; rank 1 receives
	// and answers.
	b := sim.NewBuilder(2)

	r0 := b.Rank(0)
	l1 := r0.Calc(100)       // calc 100 (ns) on stream 0
	l2 := r0.CalcOn(200, 0)  // calc 200 cpu 0
	l3 := r0.CalcOn(200, 1)  // calc 200 cpu 1 — runs in parallel with l2
	l4 := r0.Send(10, 1, 0)  // send 10b to 1
	r0.Requires(l2, l1)      // l2 requires l1
	r0.Requires(l3, l1)      // l3 requires l1
	r0.Requires(l4, l2, l3)  // l4 requires l2 and l3
	ack := r0.Recv(10, 1, 1) // wait for the reply
	r0.Requires(ack, l4)

	r1 := b.Rank(1)
	req := r1.Recv(10, 0, 0)
	work := r1.Calc(500)
	r1.Requires(work, req)
	rsp := r1.Send(10, 0, 1)
	r1.Requires(rsp, work)

	s := b.MustBuild()
	if err := s.CheckMatched(); err != nil {
		log.Fatal(err)
	}

	// Print the schedule in the textual GOAL format.
	fmt.Println("GOAL schedule:")
	if err := sim.WriteGOALText(os.Stdout, s); err != nil {
		log.Fatal(err)
	}

	// Simulate through the facade on the LogGOPS backend with the paper's
	// AI parameters (L=3.7us, o=200ns, G=0.04ns/B).
	res, err := sim.Run(context.Background(), sim.Spec{
		Workload: sim.Workload{Schedule: s},
		Backend:  "lgs",
		Config:   sim.LGSConfig{Params: sim.AIParams()},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated runtime: %v (%d ops executed)\n", res.Runtime, res.Ops)
	for r, end := range res.RankEnd {
		fmt.Printf("  rank %d finished at %v\n", r, end)
	}
}
