// Storage case study (paper §6.1): replay Financial-distribution block I/O
// through the Azure Direct Drive model and compare message completion
// times under MPRDMA (sender-based) and NDP (receiver-driven) congestion
// control on an oversubscribed fat tree.
//
// The SPC trace is ingested through the sim facade's "spc" workload
// frontend (sniffed from the bytes), which runs the Direct Drive
// conversion declared in the frontend config.
//
//	go run ./examples/storage-cc
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"atlahs/internal/workload/oltp"
	"atlahs/sim"
)

func main() {
	ctx := context.Background()
	trace := oltp.GenerateFinancial(oltp.FinancialConfig{Ops: 2000, Seed: 42})
	st := trace.ComputeStats()
	fmt.Printf("trace: %d ops, %.0f%% writes, mean request %.0f B, %.1f ms span\n",
		st.Ops, 100*st.WriteRatio, st.MeanBytes, st.Duration*1e3)

	var raw bytes.Buffer
	if _, err := trace.WriteTo(&raw); err != nil {
		log.Fatal(err)
	}

	for i, cc := range []string{"mprdma", "ndp"} {
		// 8:1 oversubscribed two-level fat tree
		mct := &sim.Sample{}
		res, err := sim.Run(ctx, sim.Spec{
			Workload: sim.Workload{
				Trace:          raw.Bytes(), // "spc" frontend, sniffed
				FrontendConfig: sim.SPCConfig{Hosts: 4, CCS: 2, BSS: 8},
			},
			Backend: "pkt",
			Config: sim.PktConfig{
				HostsPerToR: 8,
				Cores:       1,
				CC:          cc,
				Seed:        1,
				MCT:         mct,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("storage system: %d ranks (4 hosts + 2 CCS + 8 BSS + MDS/GS/SLB), %d GOAL ops\n\n",
				res.Ranks, res.Sched.Ops)
		}
		fmt.Printf("%-7s mean MCT %6.2f µs   p99 %7.2f µs   max %7.2f µs   (drops %d, trims %d)\n",
			cc, mct.Mean(), mct.Percentile(99), mct.Max(), res.Net.Drops, res.Net.Trims)
	}
	fmt.Println("\nreceiver-driven NDP cannot see congestion away from the receiver, so its")
	fmt.Println("tail latency degrades under core oversubscription (paper Fig 11).")
}
