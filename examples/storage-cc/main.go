// Storage case study (paper §6.1): replay Financial-distribution block I/O
// through the Azure Direct Drive model and compare message completion
// times under MPRDMA (sender-based) and NDP (receiver-driven) congestion
// control on an oversubscribed fat tree.
//
//	go run ./examples/storage-cc
package main

import (
	"context"
	"fmt"
	"log"

	"atlahs/internal/storage/directdrive"
	"atlahs/internal/trace/spc"
	"atlahs/sim"
)

func main() {
	ctx := context.Background()
	trace := spc.GenerateFinancial(spc.FinancialConfig{Ops: 2000, Seed: 42})
	st := trace.ComputeStats()
	fmt.Printf("trace: %d ops, %.0f%% writes, mean request %.0f B, %.1f ms span\n",
		st.Ops, 100*st.WriteRatio, st.MeanBytes, st.Duration*1e3)

	sch, layout, err := directdrive.Generate(trace, directdrive.Config{Hosts: 4, CCS: 2, BSS: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storage system: %v\n\n", layout)

	for _, cc := range []string{"mprdma", "ndp"} {
		// 8:1 oversubscribed two-level fat tree
		mct := &sim.Sample{}
		res, err := sim.Run(ctx, sim.Spec{
			Schedule: sch,
			Backend:  "pkt",
			Config: sim.PktConfig{
				HostsPerToR: 8,
				Cores:       1,
				CC:          cc,
				Seed:        1,
				MCT:         mct,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s mean MCT %6.2f µs   p99 %7.2f µs   max %7.2f µs   (drops %d, trims %d)\n",
			cc, mct.Mean(), mct.Percentile(99), mct.Max(), res.Net.Drops, res.Net.Trims)
	}
	fmt.Println("\nreceiver-driven NDP cannot see congestion away from the receiver, so its")
	fmt.Println("tail latency degrades under core oversubscription (paper Fig 11).")
}
