// HPC validation flow (paper §5.3): trace an MPI application, convert the
// trace with Schedgen under two collective-algorithm choices, and compare
// the LGS prediction against the fluid-emulator "testbed".
//
//	go run ./examples/hpc-mpi
package main

import (
	"context"
	"fmt"
	"log"

	"atlahs/internal/collective"
	"atlahs/internal/simtime"
	"atlahs/internal/trace/schedgen"
	"atlahs/internal/workload/hpcapps"
	"atlahs/sim"
)

func main() {
	ctx := context.Background()
	tr, err := hpcapps.Generate(hpcapps.Config{App: hpcapps.HPCG, Ranks: 32, Steps: 4, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	events := 0
	for _, evs := range tr.Events {
		events += len(evs)
	}
	fmt.Printf("traced HPCG: 32 ranks, %d MPI events\n\n", events)

	for _, algo := range []collective.Algo{collective.Auto, collective.Ring} {
		sch, err := schedgen.Generate(tr, schedgen.Options{
			Algos: map[collective.Kind]collective.Algo{collective.Allreduce: algo},
		})
		if err != nil {
			log.Fatal(err)
		}
		lgsRes, err := sim.Run(ctx, sim.Spec{
			Schedule: sch,
			Backend:  "lgs",
			Config:   sim.LGSConfig{Params: sim.HPCParams()},
		})
		if err != nil {
			log.Fatal(err)
		}

		// the fluid emulator plays the role of the measured system
		fluidRes, err := sim.Run(ctx, sim.Spec{
			Schedule: sch,
			Backend:  "fluid",
			Config: sim.FluidConfig{
				HostsPerToR: 16,
				Cores:       1,
				Link:        sim.LinkSpec{Latency: 600 * simtime.Nanosecond, PsPerByte: 180, BufBytes: 1 << 20},
				Overhead:    1500 * simtime.Nanosecond,
				JitterFrac:  0.03,
				Seed:        6,
				Params: sim.NetParams{
					SendOverhead: 6 * simtime.Microsecond,
					RecvOverhead: 6 * simtime.Microsecond,
				},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * (float64(lgsRes.Runtime) - float64(fluidRes.Runtime)) / float64(fluidRes.Runtime)
		fmt.Printf("allreduce algorithm %-12v measured %v, LGS %v (error %+.1f%%)\n",
			algo, fluidRes.Runtime, lgsRes.Runtime, errPct)
	}
	fmt.Println("\ncollective substitution lets one trace be re-simulated under different")
	fmt.Println("algorithm choices (paper §3.1.1).")
}
