// HPC validation flow (paper §5.3): trace an MPI application, replay the
// raw trace through the sim facade's "mpi" workload frontend under two
// collective-algorithm choices (Schedgen's collective substitution,
// declared in the frontend config), and compare the LGS prediction against
// the fluid-emulator "testbed".
//
//	go run ./examples/hpc-mpi
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"atlahs/internal/simtime"
	"atlahs/internal/workload/hpcapps"
	"atlahs/sim"
)

func main() {
	ctx := context.Background()
	tr, err := hpcapps.Generate(hpcapps.Config{App: hpcapps.HPCG, Ranks: 32, Steps: 4, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	events := 0
	for _, evs := range tr.Events {
		events += len(evs)
	}
	fmt.Printf("traced HPCG: 32 ranks, %d MPI events\n\n", events)

	var raw bytes.Buffer
	if _, err := tr.WriteTo(&raw); err != nil {
		log.Fatal(err)
	}

	for _, algo := range []sim.CollectiveAlgo{sim.AlgoAuto, sim.AlgoRing} {
		feCfg := sim.MPIConfig{
			Algos: map[sim.CollectiveKind]sim.CollectiveAlgo{sim.CollAllreduce: algo},
		}
		lgsRes, err := sim.Run(ctx, sim.Spec{
			Workload: sim.Workload{
				Trace:          raw.Bytes(), // "mpi" frontend, sniffed
				FrontendConfig: feCfg,
			},
			Backend: "lgs",
			Config:  sim.LGSConfig{Params: sim.HPCParams()},
		})
		if err != nil {
			log.Fatal(err)
		}

		// the fluid emulator plays the role of the measured system
		fluidRes, err := sim.Run(ctx, sim.Spec{
			Workload: sim.Workload{
				Trace:          raw.Bytes(),
				FrontendConfig: feCfg,
			},
			Backend: "fluid",
			Config: sim.FluidConfig{
				HostsPerToR: 16,
				Cores:       1,
				Link:        sim.LinkSpec{Latency: 600 * simtime.Nanosecond, PsPerByte: 180, BufBytes: 1 << 20},
				Overhead:    1500 * simtime.Nanosecond,
				JitterFrac:  0.03,
				Seed:        6,
				Params: sim.NetParams{
					SendOverhead: 6 * simtime.Microsecond,
					RecvOverhead: 6 * simtime.Microsecond,
				},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * (float64(lgsRes.Runtime) - float64(fluidRes.Runtime)) / float64(fluidRes.Runtime)
		fmt.Printf("allreduce algorithm %-12v measured %v, LGS %v (error %+.1f%%)\n",
			algo, fluidRes.Runtime, lgsRes.Runtime, errPct)
	}
	fmt.Println("\ncollective substitution lets one trace be re-simulated under different")
	fmt.Println("algorithm choices (paper §3.1.1).")
}
