// Multi-job scenario composition (paper §3.2): an LLM training job, an MPI
// stencil job and a storage checkpoint stream share one fat tree — the
// paper's heterogeneous co-location scenario — declared as a single spec.
// Each job is a raw trace in its native format; the facade sniffs the
// format ("nsys", "mpi", "spc"), converts through the matching workload
// frontend, composes the jobs onto disjoint fabric nodes under the
// placement policy, and runs the merged schedule as one simulation.
//
//	go run ./examples/multi-job
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"atlahs/internal/simtime"
	"atlahs/internal/workload/hpcapps"
	"atlahs/internal/workload/llm"
	"atlahs/internal/workload/oltp"
	"atlahs/sim"
)

func main() {
	ctx := context.Background()

	// Job 1 — AI: data-parallel Llama training, traced as an nsys report.
	rep, err := llm.Generate(llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 1, DP: 8, EP: 1, GlobalBatch: 16},
		Scale: 1e-4,
		Seed:  11,
	})
	if err != nil {
		log.Fatal(err)
	}
	var aiTrace bytes.Buffer
	if _, err := rep.WriteTo(&aiTrace); err != nil {
		log.Fatal(err)
	}

	// Job 2 — HPC: a CloverLeaf stencil, traced as an MPI trace.
	tr, err := hpcapps.Generate(hpcapps.Config{App: hpcapps.CloverLeaf, Ranks: 8, Steps: 3, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	var hpcTrace bytes.Buffer
	if _, err := tr.WriteTo(&hpcTrace); err != nil {
		log.Fatal(err)
	}

	// Job 3 — storage: Financial-distribution block I/O through the Direct
	// Drive model, traced as SPC CSV.
	var spcTrace bytes.Buffer
	if _, err := oltp.GenerateFinancial(oltp.FinancialConfig{Ops: 300, Seed: 13}).WriteTo(&spcTrace); err != nil {
		log.Fatal(err)
	}

	jobs := []sim.JobSpec{
		{Workload: sim.Workload{Trace: aiTrace.Bytes(), FrontendConfig: sim.NsysConfig{GPUsPerNode: 4}}},
		{Workload: sim.Workload{Trace: hpcTrace.Bytes()}},
		{Workload: sim.Workload{Trace: spcTrace.Bytes(), FrontendConfig: sim.SPCConfig{Hosts: 2, CCS: 1, BSS: 4}}},
	}
	names := []string{"LLM training", "MPI stencil", "storage checkpoint"}

	for _, placement := range []string{"packed", "interleaved"} {
		res, err := sim.Run(ctx, sim.Spec{
			Jobs:      jobs,
			Placement: placement,
			Backend:   "pkt",
			Config:    sim.PktConfig{HostsPerToR: 4, Cores: 1, CC: "mprdma", Seed: 2},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on %d shared nodes (4:1 oversubscribed, %d ops, %d drops):\n",
			placement, res.Ranks, res.Ops, res.Net.Drops)
		for j, nodes := range res.JobNodes {
			var end simtime.Time
			for _, nd := range nodes {
				if res.RankEnd[nd] > end {
					end = res.RankEnd[nd]
				}
			}
			fmt.Printf("  %-19s %2d nodes  done at %v\n", names[j], len(nodes), simtime.Duration(end))
		}
		fmt.Println()
	}
	fmt.Println("one declarative spec per scenario: the frontends ingest each job's")
	fmt.Println("native trace, and the composition layer shares the fabric between them.")
}
