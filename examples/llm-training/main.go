// LLM training end to end: generate a distributed Llama training workload,
// trace it into an nsys-like report, and replay the raw trace directly
// through the sim facade — the "nsys" workload frontend runs the 4-stage
// GOAL pipeline under the hood — comparing the message-level and
// packet-level backends, including a "what-if" regrouping of the same GPU
// trace onto a different node count (paper §3.1.2 stage 4) declared purely
// in the frontend config.
//
//	go run ./examples/llm-training
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"atlahs/internal/workload/llm"
	"atlahs/sim"
)

func main() {
	ctx := context.Background()
	cfg := llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 2, DP: 8, EP: 1, GlobalBatch: 32},
		Scale: 1e-4, // shrink bytes/compute so the packet simulation is instant
		Seed:  7,
	}
	rep, err := llm.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sum := llm.Summarize(rep, cfg.Iterations)
	fmt.Printf("traced %s on %d GPUs: %d records, %d communicators, %.1f MiB collectives, %.1f KiB P2P\n",
		cfg.Model.Name, sum.GPUs, sum.Records, sum.Comms,
		float64(sum.CollBytes)/(1<<20), float64(sum.P2PBytes)/1024)

	// Serialise the report: from here on everything flows through the
	// facade exactly as it would from an nsys file on disk.
	var raw bytes.Buffer
	if _, err := rep.WriteTo(&raw); err != nil {
		log.Fatal(err)
	}

	for _, gpn := range []int{4, 2} {
		lgsRes, err := sim.Run(ctx, sim.Spec{
			Workload: sim.Workload{
				Trace:          raw.Bytes(), // "nsys" frontend, sniffed
				FrontendConfig: sim.NsysConfig{GPUsPerNode: gpn},
			},
			Backend: "lgs",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d GPUs/node -> %d nodes: %d GOAL ops, %.2f MiB inter-node traffic\n",
			gpn, lgsRes.Ranks, lgsRes.Sched.Ops, float64(lgsRes.Sched.SendBytes)/(1<<20))
		fmt.Printf("  ATLAHS LGS:  %v\n", lgsRes.Runtime)

		pktRes, err := sim.Run(ctx, sim.Spec{
			Workload: sim.Workload{
				Trace:          raw.Bytes(),
				FrontendConfig: sim.NsysConfig{GPUsPerNode: gpn},
			},
			Backend: "pkt",
			Config:  sim.PktConfig{HostsPerToR: 4, Cores: 4, CC: "mprdma", Seed: 7},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ATLAHS pkt:  %v (%d packets, %d drops)\n", pktRes.Runtime, pktRes.Net.PktsSent, pktRes.Net.Drops)
	}
}
