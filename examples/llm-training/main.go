// LLM training end to end: generate a distributed Llama training workload,
// trace it into an nsys-like report, run the 4-stage GOAL pipeline, and
// compare the message-level and packet-level backends — including a
// "what-if" regrouping of the same GPU trace onto a different node count
// (paper §3.1.2 stage 4).
//
//	go run ./examples/llm-training
package main

import (
	"context"
	"fmt"
	"log"

	"atlahs/internal/trace/ncclgoal"
	"atlahs/internal/workload/llm"
	"atlahs/sim"
)

func main() {
	ctx := context.Background()
	cfg := llm.Config{
		Model: llm.Llama7B(),
		Par:   llm.Parallelism{TP: 1, PP: 2, DP: 8, EP: 1, GlobalBatch: 32},
		Scale: 1e-4, // shrink bytes/compute so the packet simulation is instant
		Seed:  7,
	}
	rep, err := llm.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sum := llm.Summarize(rep, cfg.Iterations)
	fmt.Printf("traced %s on %d GPUs: %d records, %d communicators, %.1f MiB collectives, %.1f KiB P2P\n",
		cfg.Model.Name, sum.GPUs, sum.Records, sum.Comms,
		float64(sum.CollBytes)/(1<<20), float64(sum.P2PBytes)/1024)

	for _, gpn := range []int{4, 2} {
		sch, err := ncclgoal.Generate(rep, ncclgoal.Config{GPUsPerNode: gpn})
		if err != nil {
			log.Fatal(err)
		}
		st := sch.ComputeStats()
		fmt.Printf("\n%d GPUs/node -> %d nodes: %d GOAL ops, %.2f MiB inter-node traffic\n",
			gpn, sch.NumRanks(), st.Ops, float64(st.SendBytes)/(1<<20))

		lgsRes, err := sim.Run(ctx, sim.Spec{Schedule: sch, Backend: "lgs"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ATLAHS LGS:  %v\n", lgsRes.Runtime)

		pktRes, err := sim.Run(ctx, sim.Spec{
			Schedule: sch,
			Backend:  "pkt",
			Config:   sim.PktConfig{HostsPerToR: 4, Cores: 4, CC: "mprdma", Seed: 7},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ATLAHS pkt:  %v (%d packets, %d drops)\n", pktRes.Runtime, pktRes.Net.PktsSent, pktRes.Net.Drops)
	}
}
