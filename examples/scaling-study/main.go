// Scaling study: mine a statistical workload model from a small recorded
// workload, then generate and simulate it at 8x, 32x and 128x the source
// rank count — the paper's trace-once, scale-everywhere workflow without
// re-instrumenting the application (§2).
//
//	go run ./examples/scaling-study
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"atlahs/sim"
)

func main() {
	// The "recorded" workload: an 8-rank bulk-synchronous application,
	// pulled straight from the generator registry. In a real study this is
	// a schedule converted from an instrumented run (sim.ConvertTraceFile
	// or `atlahs-synth mine -in run.nsys`).
	def, ok := sim.LookupGenerator("bsp")
	if !ok {
		log.Fatal("bsp generator not registered")
	}
	source, err := def.New(sim.GenRequest{
		Synthetic: sim.Synthetic{Pattern: "bsp", Ranks: 8, Bytes: 8192, Phases: 6, CalcNanos: 2000},
		Ranks:     8,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Mine the statistical model: size/count distributions, compute share,
	// traffic classes with destination-offset histograms, depth profile.
	model, err := sim.MineModel(source, "scaling-study: 8-rank bsp")
	if err != nil {
		log.Fatal(err)
	}
	var doc bytes.Buffer
	if err := sim.EncodeModel(&doc, model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined model: %d source ranks, %d source ops, %d phases (%d-byte atlahs.model/v1 doc)\n",
		model.SourceRanks, model.SourceOps, model.Phases, doc.Len())

	// Re-simulate at the source scale and far beyond it. The model is the
	// workload source on the spec — resolution samples it into a schedule,
	// deterministically for (model, ranks, seed), so these runs are
	// content-addressed and cacheable like any other.
	fmt.Println("\n ranks      ops       wire bytes   simulated runtime")
	for _, ranks := range []int{8, 64, 256, 1024} {
		res, err := sim.Run(context.Background(), sim.Spec{
			Workload: sim.Workload{Model: &sim.ModelGen{Ranks: ranks, Seed: 42, Doc: doc.Bytes()}},
			Backend:  "lgs",
			Config:   sim.LGSConfig{Params: sim.HPCParams()},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %9d  %11d   %v\n", ranks, res.Ops, res.Sched.SendBytes, res.Runtime)
	}
}
